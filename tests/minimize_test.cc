// The case minimizer, driven by synthetic failure predicates (a real
// optimizer bug is not required to test shrinking): MinimizeCase must only
// ever return cases that still reproduce, and must actually shrink when a
// smaller reproducer exists.

#include "testing/minimize.h"

#include <gtest/gtest.h>

#include <cmath>

#include "testing/fuzzer.h"

namespace blitz {
namespace {

using ::blitz::fuzz::DropPredicate;
using ::blitz::fuzz::DropRelation;
using ::blitz::fuzz::FuzzCase;
using ::blitz::fuzz::FuzzerOptions;
using ::blitz::fuzz::GenerateCase;
using ::blitz::fuzz::MinimizeCase;
using ::blitz::fuzz::SnapSelectivity;

FuzzCase TenRelationCase() {
  const FuzzerOptions options{/*seed=*/11, /*min_relations=*/10,
                              /*max_relations=*/10};
  Result<FuzzCase> c = GenerateCase(options, 0);
  EXPECT_TRUE(c.ok());
  return std::move(*c);
}

TEST(MinimizeTest, DropRelationReindexesPredicates) {
  const FuzzCase c = TenRelationCase();
  std::optional<FuzzCase> reduced = DropRelation(c, 3);
  ASSERT_TRUE(reduced.has_value());
  EXPECT_EQ(reduced->catalog.num_relations(), 9);
  EXPECT_EQ(reduced->graph.num_relations(), 9);
  for (const Predicate& p : reduced->graph.predicates()) {
    EXPECT_GE(p.lhs, 0);
    EXPECT_LT(p.rhs, 9);
  }
  // Cardinalities of the survivors are preserved (relation 4 became 3).
  EXPECT_EQ(reduced->catalog.cardinality(3), c.catalog.cardinality(4));
  EXPECT_EQ(reduced->catalog.cardinality(2), c.catalog.cardinality(2));
}

TEST(MinimizeTest, DropRelationRefusesBelowTwo) {
  const FuzzerOptions options{/*seed=*/11, 2, 2};
  Result<FuzzCase> c = GenerateCase(options, 0);
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(DropRelation(*c, 0).has_value());
}

TEST(MinimizeTest, DropPredicateRemovesExactlyOne) {
  const FuzzCase c = TenRelationCase();
  ASSERT_GT(c.graph.num_predicates(), 0);
  std::optional<FuzzCase> reduced = DropPredicate(c, 0);
  ASSERT_TRUE(reduced.has_value());
  EXPECT_EQ(reduced->graph.num_predicates(), c.graph.num_predicates() - 1);
  EXPECT_EQ(reduced->catalog.num_relations(), c.catalog.num_relations());
  EXPECT_FALSE(DropPredicate(c, c.graph.num_predicates()).has_value());
}

TEST(MinimizeTest, SnapSelectivityLandsOnPowerOfTen) {
  const FuzzCase c = TenRelationCase();
  for (int p = 0; p < c.graph.num_predicates(); ++p) {
    std::optional<FuzzCase> reduced = SnapSelectivity(c, p);
    if (!reduced.has_value()) continue;  // Already a power of ten.
    const double s = reduced->graph.predicates()[p].selectivity;
    const double log10s = std::log10(s);
    EXPECT_NEAR(log10s, std::round(log10s), 1e-12) << s;
    EXPECT_LE(s, 1.0);
  }
}

TEST(MinimizeTest, ShrinksToFailureCore) {
  // Synthetic bug: the failure reproduces whenever relation count >= 4.
  // The minimizer must walk the case down to exactly 4 relations.
  const FuzzCase c = TenRelationCase();
  const FuzzCase reduced = MinimizeCase(
      c, [](const FuzzCase& candidate) {
        return candidate.catalog.num_relations() >= 4;
      });
  EXPECT_EQ(reduced.catalog.num_relations(), 4);
  EXPECT_EQ(reduced.label, c.label + "-min");
  // Provenance survives reduction.
  EXPECT_EQ(reduced.spec.seed, c.spec.seed);
  EXPECT_EQ(reduced.spec.case_index, c.spec.case_index);
}

TEST(MinimizeTest, NeverReturnsNonReproducingCase) {
  // Failure depends on a specific predicate surviving: reproduces while
  // some predicate has selectivity below 1e-2.
  const FuzzCase c = TenRelationCase();
  const auto still_fails = [](const FuzzCase& candidate) {
    for (const Predicate& p : candidate.graph.predicates()) {
      if (p.selectivity < 1e-2) return true;
    }
    return false;
  };
  if (!still_fails(c)) GTEST_SKIP() << "sampled case has no tiny predicate";
  const FuzzCase reduced = MinimizeCase(c, still_fails);
  EXPECT_TRUE(still_fails(reduced));
  EXPECT_LE(reduced.catalog.num_relations(), c.catalog.num_relations());
}

TEST(MinimizeTest, FixedPointWhenNothingCanShrink) {
  // A failure that any two-relation slice reproduces shrinks all the way;
  // re-minimizing the result is a no-op (modulo the label suffix).
  const FuzzCase c = TenRelationCase();
  const auto always = [](const FuzzCase&) { return true; };
  const FuzzCase reduced = MinimizeCase(c, always);
  EXPECT_EQ(reduced.catalog.num_relations(), 2);
  const FuzzCase again = MinimizeCase(reduced, always);
  EXPECT_EQ(again.catalog.num_relations(), 2);
  EXPECT_EQ(again.graph.num_predicates(), reduced.graph.num_predicates());
}

}  // namespace
}  // namespace blitz
