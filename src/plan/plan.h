#ifndef BLITZ_PLAN_PLAN_H_
#define BLITZ_PLAN_PLAN_H_

#include <memory>
#include <string>

#include "catalog/catalog.h"
#include "common/status.h"
#include "core/dp_table.h"
#include "core/relset.h"
#include "query/join_graph.h"

namespace blitz {

/// Physical join algorithm attached to a join node by the Section 6.5
/// post-pass (see plan/algorithm_choice.h). kUnspecified until attached.
enum class JoinAlgorithm {
  kUnspecified,
  kCartesianProduct,  ///< No predicate spans the operands.
  kNestedLoops,
  kSortMerge,
  kHash,
};

const char* JoinAlgorithmToString(JoinAlgorithm algorithm);

/// A node of a (bushy) plan tree. A leaf scans one base relation; an inner
/// node joins its two children. Passive data; plans are built and owned via
/// the Plan wrapper.
struct PlanNode {
  /// The set of base relations this subtree produces.
  RelSet set;

  std::unique_ptr<PlanNode> left;
  std::unique_ptr<PlanNode> right;

  /// Physical algorithm (inner nodes only); set by ChooseAlgorithms.
  JoinAlgorithm algorithm = JoinAlgorithm::kUnspecified;

  /// Attribute class this node's output is sorted on (-1 = none). Set by
  /// the order-aware optimizer (api/interesting_orders.h) on sort-merge
  /// nodes.
  int sort_class = -1;

  bool is_leaf() const { return left == nullptr; }

  /// The base-relation index of a leaf.
  int relation() const { return set.Min(); }
};

/// An immutable join-order plan: an operator tree over a set of base
/// relations. Move-only; use Clone() for an explicit deep copy.
class Plan {
 public:
  Plan() = default;
  Plan(Plan&&) = default;
  Plan& operator=(Plan&&) = default;
  Plan(const Plan&) = delete;
  Plan& operator=(const Plan&) = delete;

  /// A single-relation plan.
  static Plan Leaf(int relation);

  /// Joins two plans (which must cover disjoint relation sets).
  static Plan Join(Plan lhs, Plan rhs);

  /// Reads the optimal plan for subset `s` out of a filled DP table by
  /// recursively following best_lhs links (the extraction procedure of
  /// Section 3.1). Fails if `s` was rejected (no plan under the threshold).
  static Result<Plan> ExtractFromTable(const DpTable& table, RelSet s);

  /// Extraction for the full relation set of the table.
  static Result<Plan> ExtractFromTable(const DpTable& table);

  bool empty() const { return root_ == nullptr; }
  const PlanNode& root() const { return *root_; }
  PlanNode& mutable_root() { return *root_; }

  /// The set of base relations the plan covers.
  RelSet relations() const { return root_ == nullptr ? RelSet() : root_->set; }

  int NumLeaves() const;
  int NumJoins() const { return NumLeaves() - 1; }

  /// Height of the operator tree (a leaf has depth 0).
  int Depth() const;

  /// True if every join's right operand is a base relation — the "left-deep
  /// vine" shape of [IK91] that many optimizers restrict themselves to.
  bool IsLeftDeep() const;

  /// Number of join nodes with no predicate spanning their operands, i.e.
  /// Cartesian products under `graph`.
  int CountCartesianProducts(const JoinGraph& graph) const;

  Plan Clone() const;

  /// Structural equality (same shapes, same leaf relations; algorithms are
  /// ignored).
  bool StructurallyEquals(const Plan& other) const;

  /// Compact infix rendering, e.g. "((R0 x R3) x (R1 x R2))". With a catalog,
  /// relation names are used instead of R<i>.
  std::string ToString(const Catalog* catalog = nullptr) const;

  /// Multi-line indented tree rendering with per-node relation sets and,
  /// when attached, algorithms.
  std::string ToTreeString(const Catalog* catalog = nullptr) const;

 private:
  explicit Plan(std::unique_ptr<PlanNode> root) : root_(std::move(root)) {}

  std::unique_ptr<PlanNode> root_;
};

}  // namespace blitz

#endif  // BLITZ_PLAN_PLAN_H_
