file(REMOVE_RECURSE
  "CMakeFiles/bench_hybrid_scaling.dir/bench_hybrid_scaling.cc.o"
  "CMakeFiles/bench_hybrid_scaling.dir/bench_hybrid_scaling.cc.o.d"
  "bench_hybrid_scaling"
  "bench_hybrid_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hybrid_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
