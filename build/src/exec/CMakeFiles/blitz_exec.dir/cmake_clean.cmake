file(REMOVE_RECURSE
  "CMakeFiles/blitz_exec.dir/datagen.cc.o"
  "CMakeFiles/blitz_exec.dir/datagen.cc.o.d"
  "CMakeFiles/blitz_exec.dir/executor.cc.o"
  "CMakeFiles/blitz_exec.dir/executor.cc.o.d"
  "CMakeFiles/blitz_exec.dir/operators.cc.o"
  "CMakeFiles/blitz_exec.dir/operators.cc.o.d"
  "CMakeFiles/blitz_exec.dir/relation.cc.o"
  "CMakeFiles/blitz_exec.dir/relation.cc.o.d"
  "libblitz_exec.a"
  "libblitz_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blitz_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
