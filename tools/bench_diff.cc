// bench_diff: the CI perf-regression gate. Compares two "blitz-bench-v1"
// JSON files point-by-point (time-like units only) and exits non-zero when
// the candidate regressed past the threshold.
//
//   bench_diff [--max-ratio=R] [--min-value=V] baseline.json candidate.json
//
// Exit codes: 0 = no regression, 1 = regression(s) found, 2 = usage or
// parse error. --max-ratio defaults to 1.15 (interactive use); CI passes a
// much looser value to absorb shared-runner noise. --min-value is the noise
// floor below which points are never flagged (in each point's own unit).

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "benchlib/bench_diff.h"
#include "benchlib/bench_json.h"
#include "common/strings.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--max-ratio=R] [--min-value=V] "
               "baseline.json candidate.json\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  blitz::BenchDiffOptions options;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (blitz::StartsWith(arg, "--max-ratio=")) {
      double value = 0;
      if (!blitz::ParseDouble(arg.substr(12), &value) || value <= 1.0) {
        std::fprintf(stderr, "bench_diff: --max-ratio must be > 1.0\n");
        return 2;
      }
      options.max_ratio = value;
    } else if (blitz::StartsWith(arg, "--min-value=")) {
      double value = 0;
      if (!blitz::ParseDouble(arg.substr(12), &value) || value < 0) {
        std::fprintf(stderr, "bench_diff: --min-value must be >= 0\n");
        return 2;
      }
      options.min_value = value;
    } else if (blitz::StartsWith(arg, "--")) {
      std::fprintf(stderr, "bench_diff: unknown flag %s\n", argv[i]);
      return Usage(argv[0]);
    } else {
      files.emplace_back(arg);
    }
  }
  if (files.size() != 2) return Usage(argv[0]);

  blitz::Result<blitz::BenchReport> baseline =
      blitz::ReadBenchJsonFile(files[0]);
  if (!baseline.ok()) {
    std::fprintf(stderr, "bench_diff: %s\n",
                 baseline.status().ToString().c_str());
    return 2;
  }
  blitz::Result<blitz::BenchReport> candidate =
      blitz::ReadBenchJsonFile(files[1]);
  if (!candidate.ok()) {
    std::fprintf(stderr, "bench_diff: %s\n",
                 candidate.status().ToString().c_str());
    return 2;
  }

  const blitz::BenchDiffResult diff =
      blitz::DiffBenchReports(*baseline, *candidate, options);
  std::printf("baseline:  %s (%s)\ncandidate: %s (%s)\n", files[0].c_str(),
              baseline->bench.c_str(), files[1].c_str(),
              candidate->bench.c_str());
  std::printf("threshold: max-ratio %.3f, noise floor %g\n",
              options.max_ratio, options.min_value);
  std::fputs(diff.ToString().c_str(), stdout);
  return diff.has_regression() ? 1 : 0;
}
