#include "core/instrumentation.h"

#include "common/strings.h"

namespace blitz {

std::string CountingInstrumentation::ToString() const {
  return StrFormat(
      "subsets=%llu loop_iters=%llu operand_passes=%llu kappa2=%llu "
      "improvements=%llu threshold_skips=%llu",
      static_cast<unsigned long long>(subsets_visited),
      static_cast<unsigned long long>(loop_iterations),
      static_cast<unsigned long long>(operand_passes),
      static_cast<unsigned long long>(kappa2_evaluations),
      static_cast<unsigned long long>(improvements),
      static_cast<unsigned long long>(threshold_skips));
}

}  // namespace blitz
