# Empty dependencies file for bench_ablation_topdown.
# This may be replaced when dependencies are built.
