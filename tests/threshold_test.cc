#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "plan/plan.h"
#include "query/workload.h"
#include "test_util.h"

namespace blitz {
namespace {

using ::blitz::testing::MakeRandomInstance;

TEST(ThresholdTest, GenerousThresholdReproducesUnboundedOptimum) {
  const auto instance = MakeRandomInstance(9, /*seed=*/11);
  OptimizerOptions unbounded;
  Result<OptimizeOutcome> reference =
      OptimizeJoin(instance.catalog, instance.graph, unbounded);
  ASSERT_TRUE(reference.ok());
  ASSERT_TRUE(reference->found_plan());

  OptimizerOptions thresholded = unbounded;
  thresholded.cost_threshold = reference->cost * 10.0f;
  Result<OptimizeOutcome> outcome =
      OptimizeJoin(instance.catalog, instance.graph, thresholded);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->found_plan());
  EXPECT_EQ(outcome->cost, reference->cost);
}

TEST(ThresholdTest, TightThresholdFailsOptimization) {
  const auto instance = MakeRandomInstance(9, /*seed=*/11);
  OptimizerOptions unbounded;
  Result<OptimizeOutcome> reference =
      OptimizeJoin(instance.catalog, instance.graph, unbounded);
  ASSERT_TRUE(reference.ok());

  OptimizerOptions thresholded = unbounded;
  thresholded.cost_threshold = reference->cost * 0.5f;
  Result<OptimizeOutcome> outcome =
      OptimizeJoin(instance.catalog, instance.graph, thresholded);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->found_plan());
}

TEST(ThresholdTest, ThresholdEqualToOptimumRejects) {
  // Plans costing >= the threshold are rejected ("simulate the effect of
  // overflow at a plan-cost threshold"), so a threshold exactly at the
  // optimum must fail.
  const auto instance = MakeRandomInstance(7, /*seed=*/5);
  Result<OptimizeOutcome> reference =
      OptimizeJoin(instance.catalog, instance.graph, OptimizerOptions{});
  ASSERT_TRUE(reference.ok());
  OptimizerOptions thresholded;
  thresholded.cost_threshold = reference->cost;
  Result<OptimizeOutcome> outcome =
      OptimizeJoin(instance.catalog, instance.graph, thresholded);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->found_plan());
}

TEST(ThresholdTest, ThresholdSkipsBestSplitLoops) {
  // With a tight threshold on a chain query, most subsets have
  // kappa'(S) over the threshold and their loops are skipped entirely
  // (Section 6.4: "Best-split searches can then be avoided for a larger
  // proportion of subsets S").
  WorkloadSpec spec;
  spec.num_relations = 12;
  spec.topology = Topology::kChain;
  spec.mean_cardinality = 10000;
  spec.variability = 0;
  Result<Workload> workload = MakeWorkload(spec);
  ASSERT_TRUE(workload.ok());

  OptimizerOptions counting;
  counting.count_operations = true;
  Result<OptimizeOutcome> unbounded =
      OptimizeJoin(workload->catalog, workload->graph, counting);
  ASSERT_TRUE(unbounded.ok());
  ASSERT_TRUE(unbounded->found_plan());

  OptimizerOptions thresholded = counting;
  thresholded.cost_threshold = unbounded->cost * 2.0f;
  Result<OptimizeOutcome> outcome =
      OptimizeJoin(workload->catalog, workload->graph, thresholded);
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->found_plan());
  EXPECT_EQ(outcome->cost, unbounded->cost);
  EXPECT_GT(outcome->counters.threshold_skips, 0u);
  EXPECT_LT(outcome->counters.loop_iterations,
            unbounded->counters.loop_iterations);
}

TEST(ThresholdTest, LadderSucceedsAfterFailedPasses) {
  const auto instance = MakeRandomInstance(8, /*seed=*/21);
  Result<OptimizeOutcome> reference =
      OptimizeJoin(instance.catalog, instance.graph, OptimizerOptions{});
  ASSERT_TRUE(reference.ok());

  ThresholdLadderOptions ladder;
  ladder.initial_threshold = reference->cost / 1e6f;
  ladder.growth_factor = 10.0f;
  ladder.max_thresholded_passes = 12;
  Result<LadderOutcome> outcome = OptimizeJoinWithThresholds(
      instance.catalog, instance.graph, OptimizerOptions{}, ladder);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->outcome.found_plan());
  EXPECT_EQ(outcome->outcome.cost, reference->cost);
  EXPECT_GT(outcome->passes, 1);
  EXPECT_EQ(outcome->passes,
            static_cast<int>(outcome->thresholds_tried.size()));
}

TEST(ThresholdTest, LadderSingleBigThresholdSucceedsFirstPass) {
  const auto instance = MakeRandomInstance(8, /*seed=*/21);
  Result<OptimizeOutcome> reference =
      OptimizeJoin(instance.catalog, instance.graph, OptimizerOptions{});
  ASSERT_TRUE(reference.ok());

  ThresholdLadderOptions ladder;
  ladder.initial_threshold = reference->cost * 100.0f;
  Result<LadderOutcome> outcome = OptimizeJoinWithThresholds(
      instance.catalog, instance.graph, OptimizerOptions{}, ladder);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->passes, 1);
  EXPECT_EQ(outcome->outcome.cost, reference->cost);
}

TEST(ThresholdTest, LadderFallsBackToUnboundedPass) {
  const auto instance = MakeRandomInstance(8, /*seed=*/21);
  Result<OptimizeOutcome> reference =
      OptimizeJoin(instance.catalog, instance.graph, OptimizerOptions{});
  ASSERT_TRUE(reference.ok());

  ThresholdLadderOptions ladder;
  ladder.initial_threshold = 1e-20f;
  ladder.growth_factor = 1.5f;  // will never reach the optimum in 2 passes
  ladder.max_thresholded_passes = 2;
  Result<LadderOutcome> outcome = OptimizeJoinWithThresholds(
      instance.catalog, instance.graph, OptimizerOptions{}, ladder);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->outcome.found_plan());
  EXPECT_EQ(outcome->outcome.cost, reference->cost);
  EXPECT_EQ(outcome->passes, 3);  // 2 failed thresholded + 1 unbounded
  EXPECT_EQ(outcome->thresholds_tried.back(), kRejectedCost);
}

TEST(ThresholdTest, LadderRejectsBadParameters) {
  const auto instance = MakeRandomInstance(4, /*seed=*/2);
  ThresholdLadderOptions bad;
  bad.initial_threshold = -1.0f;
  EXPECT_FALSE(OptimizeJoinWithThresholds(instance.catalog, instance.graph,
                                          OptimizerOptions{}, bad)
                   .ok());
  bad.initial_threshold = 1.0f;
  bad.growth_factor = 0.5f;
  EXPECT_FALSE(OptimizeJoinWithThresholds(instance.catalog, instance.graph,
                                          OptimizerOptions{}, bad)
                   .ok());
}

TEST(ThresholdTest, PlanExtractionFailsForRejectedSets) {
  const auto instance = MakeRandomInstance(7, /*seed=*/5);
  Result<OptimizeOutcome> reference =
      OptimizeJoin(instance.catalog, instance.graph, OptimizerOptions{});
  ASSERT_TRUE(reference.ok());
  OptimizerOptions thresholded;
  thresholded.cost_threshold = reference->cost * 0.9f;
  Result<OptimizeOutcome> outcome =
      OptimizeJoin(instance.catalog, instance.graph, thresholded);
  ASSERT_TRUE(outcome.ok());
  ASSERT_FALSE(outcome->found_plan());
  Result<Plan> plan = Plan::ExtractFromTable(outcome->table);
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace blitz
