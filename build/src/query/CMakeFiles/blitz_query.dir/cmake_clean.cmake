file(REMOVE_RECURSE
  "CMakeFiles/blitz_query.dir/equivalence.cc.o"
  "CMakeFiles/blitz_query.dir/equivalence.cc.o.d"
  "CMakeFiles/blitz_query.dir/join_graph.cc.o"
  "CMakeFiles/blitz_query.dir/join_graph.cc.o.d"
  "CMakeFiles/blitz_query.dir/plan_space.cc.o"
  "CMakeFiles/blitz_query.dir/plan_space.cc.o.d"
  "CMakeFiles/blitz_query.dir/topology.cc.o"
  "CMakeFiles/blitz_query.dir/topology.cc.o.d"
  "CMakeFiles/blitz_query.dir/workload.cc.o"
  "CMakeFiles/blitz_query.dir/workload.cc.o.d"
  "libblitz_query.a"
  "libblitz_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blitz_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
