#ifndef BLITZ_OBS_PROFILER_PROFILER_H_
#define BLITZ_OBS_PROFILER_PROFILER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "obs/metrics.h"
#include "obs/profiler/perf_counters.h"
#include "obs/profiler/phase_profile.h"
#include "obs/trace.h"

namespace blitz {

/// Accumulated cost of one named ProfileScope: call count, wall seconds,
/// and the hardware-counter deltas (zero where the backend is timer-only).
struct ProfScopeStats {
  std::uint64_t calls = 0;
  double wall_seconds = 0;
  HwSample hw;

  ProfScopeStats& operator+=(const ProfScopeStats& other) {
    calls += other.calls;
    wall_seconds += other.wall_seconds;
    hw += other.hw;
    return *this;
  }
};

/// Thread-safe sink for the performance observatory: named ProfileScope
/// totals (wall time + hardware counters) plus the per-phase DP attribution
/// folded in from profiled optimizer passes. Mirrors the GlobalMetrics /
/// GlobalTraceRecorder hook pattern — library code writes through
/// GlobalProfiler() when one is installed and pays one atomic load
/// otherwise. Not owned by the hook; uninstall before destroying.
class Profiler {
 public:
  Profiler() = default;

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Accumulates one finished scope. `valid_mask` is the HwCounterGroup
  /// mask of counters actually measured (ORed into the profiler's mask so
  /// the export names the backend honestly).
  void RecordScope(std::string_view name, double seconds, const HwSample& hw,
                   unsigned valid_mask);

  /// Accumulates one optimizer pass's phase attribution (called by the
  /// optimizer after a profiled pass; parallel passes fold their per-worker
  /// profiles before reaching here).
  void FoldPass(const PassProfile& profile);

  /// Copy of the accumulated DP phase attribution.
  PassProfile pass_profile() const;

  /// "perf_event" once any scope measured hardware counters, else "timer".
  const char* backend() const;

  /// {"backend":...,"counters":[names...],"scopes":{name:{"calls":...,
  ///  "seconds":...,"cycles":...,...}},"dp":<PassProfile::ToJson()>} —
  /// always a valid JSON object.
  std::string ToJson() const;

  /// Human-readable scope table plus the DP phase table.
  std::string ToString() const;

  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, ProfScopeStats, std::less<>> scopes_;
  PassProfile pass_;
  unsigned hw_valid_mask_ = 0;
};

/// Process-global profiler hook (see Profiler). Near-zero cost while no
/// profiler is installed.
Profiler* GlobalProfiler();
void SetGlobalProfiler(Profiler* profiler);

/// RAII profiled region: opens a hardware-counter group on the calling
/// thread at construction, and at destruction records the wall time and
/// counter deltas under `name` in the profiler. Also opens a TraceSpan of
/// the same name, so profiled regions nest under the existing trace spans
/// in --trace-out exports. Inactive (no counters opened, no span, no clock
/// read beyond one atomic load) when the profiler is null — the default
/// when no global profiler is installed. `name` must outlive the scope.
class ProfileScope {
 public:
  explicit ProfileScope(const char* name, const char* category = "profile")
      : ProfileScope(GlobalProfiler(), name, category) {}

  ProfileScope(Profiler* profiler, const char* name,
               const char* category = "profile");

  ~ProfileScope();

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

  bool active() const { return profiler_ != nullptr; }

  /// Forwards a numeric argument onto the nested trace span.
  void AddArg(const char* key, double value) { span_.AddArg(key, value); }

 private:
  Profiler* profiler_;
  const char* name_;
  TraceSpan span_;
  HwCounterGroup hw_;
  MetricTimer timer_;
};

}  // namespace blitz

#endif  // BLITZ_OBS_PROFILER_PROFILER_H_
