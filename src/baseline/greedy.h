#ifndef BLITZ_BASELINE_GREEDY_H_
#define BLITZ_BASELINE_GREEDY_H_

#include "card/estimator.h"
#include "catalog/catalog.h"
#include "common/status.h"
#include "cost/cost_model.h"
#include "plan/plan.h"
#include "query/join_graph.h"

namespace blitz {

/// Pair-selection criterion for the greedy heuristic.
enum class GreedyCriterion {
  /// Join the pair of subtrees whose result has the smallest cardinality
  /// (classic greedy operator ordering, GOO).
  kMinOutputCardinality,
  /// Join the pair with the smallest immediate cost increment kappa.
  kMinCostIncrement,
};

/// Result of a greedy optimization.
struct GreedyResult {
  Plan plan;
  double cost = 0;
};

/// O(n^3) greedy heuristic: start with one subtree per base relation and
/// repeatedly merge the best pair under `criterion` until a single (bushy)
/// tree remains. Produces plans of reasonable but unguaranteed quality in
/// polynomial time — the heuristic comparator for the benches, standing in
/// for the heuristic family surveyed by Steinbrunn [Ste96].
///
/// `estimator` (nullable) is the cardinality seam: null or exact keeps the
/// Section 5.1 derivation over the catalog and graph; a non-exact estimator
/// supplies every subtree cardinality the pair scoring consumes, so the
/// heuristic ranks pairs exactly as a system without true statistics would.
Result<GreedyResult> OptimizeGreedy(
    const Catalog& catalog, const JoinGraph& graph, CostModelKind cost_model,
    GreedyCriterion criterion,
    const CardinalityEstimator* estimator = nullptr);

}  // namespace blitz

#endif  // BLITZ_BASELINE_GREEDY_H_
