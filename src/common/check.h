#ifndef BLITZ_COMMON_CHECK_H_
#define BLITZ_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace blitz::internal_check {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "BLITZ_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace blitz::internal_check

/// Aborts with a diagnostic if `cond` is false. Enabled in all build modes;
/// use only for programmer errors, not for input validation (which should
/// return Status).
#define BLITZ_CHECK(cond)                                                \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::blitz::internal_check::CheckFailed(#cond, __FILE__, __LINE__);   \
    }                                                                    \
  } while (false)

/// Debug-only variant of BLITZ_CHECK; compiles to nothing under NDEBUG so it
/// is safe to use on hot paths.
#ifdef NDEBUG
#define BLITZ_DCHECK(cond) \
  do {                     \
  } while (false)
#else
#define BLITZ_DCHECK(cond) BLITZ_CHECK(cond)
#endif

#endif  // BLITZ_COMMON_CHECK_H_
