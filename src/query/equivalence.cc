#include "query/equivalence.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <utility>

#include "common/strings.h"

namespace blitz {

JoinSpecBuilder::JoinSpecBuilder(int num_relations, EquivalencePolicy policy)
    : num_relations_(num_relations), policy_(policy) {}

Status JoinSpecBuilder::AddPredicate(int i, int j, double selectivity) {
  if (i < 0 || i >= num_relations_ || j < 0 || j >= num_relations_ ||
      i == j) {
    return Status::InvalidArgument(
        StrFormat("bad predicate endpoints (%d,%d)", i, j));
  }
  if (!(selectivity > 0.0) || selectivity > 1.0 ||
      !std::isfinite(selectivity)) {
    return Status::InvalidArgument(
        StrFormat("selectivity %g outside (0,1]", selectivity));
  }
  plain_predicates_.push_back(
      {std::min(i, j), std::max(i, j), selectivity});
  return Status::OK();
}

Status JoinSpecBuilder::AddEquivalenceClass(
    std::vector<int> relations, std::vector<double> distinct_counts) {
  if (relations.size() < 2) {
    return Status::InvalidArgument(
        "equivalence class needs at least 2 members");
  }
  if (relations.size() != distinct_counts.size()) {
    return Status::InvalidArgument(
        "one distinct count per class member required");
  }
  std::set<int> seen;
  for (size_t m = 0; m < relations.size(); ++m) {
    if (relations[m] < 0 || relations[m] >= num_relations_) {
      return Status::OutOfRange(
          StrFormat("relation %d out of range", relations[m]));
    }
    if (!seen.insert(relations[m]).second) {
      return Status::InvalidArgument(
          StrFormat("relation %d appears twice in one class",
                    relations[m]));
    }
    if (!(distinct_counts[m] >= 1.0) || !std::isfinite(distinct_counts[m])) {
      return Status::InvalidArgument(
          StrFormat("distinct count %g must be >= 1", distinct_counts[m]));
    }
  }
  classes_.push_back({std::move(relations), std::move(distinct_counts)});
  return Status::OK();
}

double EquivalenceClassJoinFactor(
    const std::vector<double>& distinct_counts) {
  double product = 1.0;
  double min_d = distinct_counts.empty() ? 1.0 : distinct_counts[0];
  for (const double d : distinct_counts) {
    product *= d;
    min_d = std::min(min_d, d);
  }
  return min_d / product;
}

Result<JoinGraph> JoinSpecBuilder::Build() const {
  // Accumulate the merged selectivity per relation pair.
  std::vector<double> merged(
      static_cast<size_t>(num_relations_) * num_relations_, 1.0);
  std::vector<bool> present(merged.size(), false);
  auto accumulate = [&](int a, int b, double selectivity) {
    const size_t slot_ab = static_cast<size_t>(a) * num_relations_ + b;
    const size_t slot_ba = static_cast<size_t>(b) * num_relations_ + a;
    merged[slot_ab] *= selectivity;
    merged[slot_ba] = merged[slot_ab];
    present[slot_ab] = present[slot_ba] = true;
  };

  for (const Predicate& p : plain_predicates_) {
    accumulate(p.lhs, p.rhs, p.selectivity);
  }

  for (const EquivalenceClass& cls : classes_) {
    const size_t k = cls.relations.size();
    // Member order sorted by ascending distinct count (used by the
    // calibrated policy; harmless for pairwise).
    std::vector<size_t> order(k);
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return cls.distinct_counts[a] < cls.distinct_counts[b];
    });
    for (size_t a = 0; a < k; ++a) {
      for (size_t b = a + 1; b < k; ++b) {
        const int rel_a = cls.relations[order[a]];
        const int rel_b = cls.relations[order[b]];
        double selectivity;
        if (policy_ == EquivalencePolicy::kPairwise) {
          selectivity = 1.0 / std::max(cls.distinct_counts[order[a]],
                                       cls.distinct_counts[order[b]]);
        } else {
          // Calibrated: consecutive sorted members carry the class's whole
          // selectivity mass (1 / larger distinct count each); implied
          // edges are pure connectivity (selectivity 1).
          selectivity = (b == a + 1)
                            ? 1.0 / cls.distinct_counts[order[b]]
                            : 1.0;
        }
        accumulate(rel_a, rel_b, selectivity);
      }
    }
  }

  JoinGraph graph(num_relations_);
  for (int i = 0; i < num_relations_; ++i) {
    for (int j = i + 1; j < num_relations_; ++j) {
      const size_t slot = static_cast<size_t>(i) * num_relations_ + j;
      if (present[slot]) {
        BLITZ_RETURN_IF_ERROR(
            graph.AddPredicate(i, j, std::min(merged[slot], 1.0)));
      }
    }
  }
  return graph;
}

}  // namespace blitz
