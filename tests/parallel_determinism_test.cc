// Determinism contract of the rank-synchronous parallel optimizer: for any
// thread count, the filled DP table — costs, cardinalities, and chosen
// splits — is bit-identical to the sequential driver's, and the operation
// counters fold to exactly the sequential totals.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/dp_table.h"
#include "core/optimizer.h"
#include "plan/plan.h"
#include "test_util.h"
#include "testing/fuzzer.h"

namespace blitz {
namespace {

/// Asserts every allocated column of `a` and `b` is bitwise equal.
void ExpectTablesBitIdentical(DpTable* a, DpTable* b) {
  ASSERT_EQ(a->num_relations(), b->num_relations());
  ASSERT_EQ(a->has_pi_fan(), b->has_pi_fan());
  ASSERT_EQ(a->has_aux(), b->has_aux());
  const std::size_t rows = static_cast<std::size_t>(a->size());
  EXPECT_EQ(std::memcmp(a->cost_data(), b->cost_data(),
                        rows * sizeof(float)),
            0);
  EXPECT_EQ(std::memcmp(a->card_data(), b->card_data(),
                        rows * sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(a->best_lhs_data(), b->best_lhs_data(),
                        rows * sizeof(std::uint32_t)),
            0);
  if (a->has_pi_fan()) {
    EXPECT_EQ(std::memcmp(a->pi_fan_data(), b->pi_fan_data(),
                          rows * sizeof(double)),
              0);
  }
  if (a->has_aux()) {
    EXPECT_EQ(std::memcmp(a->aux_data(), b->aux_data(),
                          rows * sizeof(double)),
              0);
  }
}

OptimizerOptions ParallelOptions(CostModelKind model, int threads,
                                 std::uint64_t min_rank = 4) {
  OptimizerOptions options;
  options.cost_model = model;
  options.count_operations = true;
  options.parallel.num_threads = threads;
  // Lowered so the widest ranks of modest test problems actually fan out.
  options.parallel.min_parallel_rank = min_rank;
  return options;
}

constexpr CostModelKind kModels[] = {CostModelKind::kNaive,
                                     CostModelKind::kSortMerge,
                                     CostModelKind::kMinAll};
constexpr int kThreadCounts[] = {1, 2, 4, 8};

TEST(ParallelDeterminismTest, GeneratedSweepBitIdenticalAcrossConfigGrid) {
  // Generator-driven exhaustive sweep at n = 10: every sampled topology
  // (chain / star / clique / random(p), varied cardinality ladders), every
  // cost model, and the full {threads} x {simd kernel} grid must land on
  // the sequential scalar run's table lane for lane, with identical
  // operation counters. Replaces the two hand-enumerated instances the
  // suite started with — the workload fuzzer (src/testing/fuzzer.h) now
  // supplies the cases, deterministically from one seed.
  const fuzz::FuzzerOptions generator{/*seed=*/20260807,
                                      /*min_relations=*/10,
                                      /*max_relations=*/10};
  ASSERT_TRUE(generator.Validate().ok());
  constexpr CostModelKind kSweepModels[] = {CostModelKind::kNaive,
                                            CostModelKind::kSortMerge,
                                            CostModelKind::kDiskNestedLoops};
  for (std::uint64_t case_index = 0; case_index < 8; ++case_index) {
    Result<fuzz::FuzzCase> c = fuzz::GenerateCase(generator, case_index);
    ASSERT_TRUE(c.ok()) << c.status().ToString();
    for (const CostModelKind model : kSweepModels) {
      OptimizerOptions reference = ParallelOptions(model, 1);
      reference.simd = SimdLevel::kScalar;
      Result<OptimizeOutcome> baseline =
          OptimizeJoin(c->catalog, c->graph, reference);
      ASSERT_TRUE(baseline.ok()) << c->label;
      Result<Plan> baseline_plan = Plan::ExtractFromTable(baseline->table);
      ASSERT_TRUE(baseline_plan.ok()) << c->label;
      for (const SimdLevel level : {SimdLevel::kScalar, SimdLevel::kBlock}) {
        for (const int threads : kThreadCounts) {
          OptimizerOptions options = ParallelOptions(model, threads);
          options.simd = level;
          Result<OptimizeOutcome> outcome =
              OptimizeJoin(c->catalog, c->graph, options);
          ASSERT_TRUE(outcome.ok())
              << c->label << " threads=" << threads
              << " simd=" << SimdLevelName(level);
          EXPECT_EQ(outcome->cost, baseline->cost) << c->label;
          ExpectTablesBitIdentical(&outcome->table, &baseline->table);
          EXPECT_EQ(outcome->counters.subsets_visited,
                    baseline->counters.subsets_visited);
          EXPECT_EQ(outcome->counters.loop_iterations,
                    baseline->counters.loop_iterations);
          EXPECT_EQ(outcome->counters.improvements,
                    baseline->counters.improvements);
          // Identical best_lhs columns imply identical extracted plans;
          // check the visible artifact too.
          Result<Plan> plan = Plan::ExtractFromTable(outcome->table);
          ASSERT_TRUE(plan.ok());
          EXPECT_EQ(plan->ToString(), baseline_plan->ToString()) << c->label;
        }
      }
    }
  }
}

TEST(ParallelDeterminismTest, ThresholdRejectionIsDeterministicToo) {
  // A biting cost threshold exercises the kappa' skip and rejection paths;
  // the rejected-row pattern must not depend on the thread count.
  const testing::RandomInstance instance =
      testing::MakeRandomInstance(12, /*seed=*/7);
  OptimizerOptions sequential = ParallelOptions(CostModelKind::kNaive, 1);
  sequential.cost_threshold = 1e6f;
  Result<OptimizeOutcome> baseline =
      OptimizeJoin(instance.catalog, instance.graph, sequential);
  ASSERT_TRUE(baseline.ok());
  for (const int threads : {2, 8}) {
    OptimizerOptions parallel = ParallelOptions(CostModelKind::kNaive, threads);
    parallel.cost_threshold = 1e6f;
    Result<OptimizeOutcome> outcome =
        OptimizeJoin(instance.catalog, instance.graph, parallel);
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome->cost, baseline->cost);
    ExpectTablesBitIdentical(&outcome->table, &baseline->table);
    EXPECT_EQ(outcome->counters.threshold_skips,
              baseline->counters.threshold_skips);
  }
}

TEST(ParallelDeterminismTest, TinyProblemForcedParallelMatchesPaperExample) {
  // min_parallel_rank = 1 forces the rank driver even at n = 4, covering
  // the degenerate chunks-smaller-than-threads paths against the worked
  // Table 1 / Figure 3 example.
  const Catalog catalog = testing::Table1Catalog();
  const JoinGraph graph = testing::Figure3Graph();
  Result<OptimizeOutcome> baseline =
      OptimizeJoin(catalog, graph, OptimizerOptions{});
  ASSERT_TRUE(baseline.ok());
  for (const int threads : {2, 8}) {
    Result<OptimizeOutcome> outcome = OptimizeJoin(
        catalog, graph,
        ParallelOptions(CostModelKind::kNaive, threads, /*min_rank=*/1));
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome->cost, baseline->cost);
    ExpectTablesBitIdentical(&outcome->table, &baseline->table);
  }
}

TEST(ParallelDeterminismTest, DefaultOptionsKeepSmallProblemsSequential) {
  // The default min_parallel_rank leaves every n <= 13 on the sequential
  // path even when threads are requested — the zero-new-overhead contract.
  ParallelOptimizerOptions parallel;
  parallel.num_threads = 8;
  for (int n = 2; n <= 13; ++n) EXPECT_FALSE(parallel.ShouldParallelize(n));
  EXPECT_TRUE(parallel.ShouldParallelize(14));  // C(14,7) = 3432 >= 2048
  // And a single thread never parallelizes anything.
  ParallelOptimizerOptions single;
  for (int n = 2; n <= 30; ++n) EXPECT_FALSE(single.ShouldParallelize(n));
}

TEST(ParallelDeterminismTest, SimdLevelsBitIdenticalAcrossThreadCounts) {
  // The SIMD split filter composes with the rank driver: every worker of a
  // pass runs the same resolved kernel, so (simd level x thread count) must
  // land on the one sequential-scalar table. kAvx2/kAvx512 requests clamp
  // down on machines without the instruction set, so this passes (with
  // reduced coverage) anywhere.
  const testing::RandomInstance instance =
      testing::MakeRandomInstance(13, /*seed=*/23);
  OptimizerOptions reference = ParallelOptions(CostModelKind::kSortMerge, 1);
  reference.simd = SimdLevel::kScalar;
  Result<OptimizeOutcome> baseline =
      OptimizeJoin(instance.catalog, instance.graph, reference);
  ASSERT_TRUE(baseline.ok());
  for (const SimdLevel level :
       {SimdLevel::kBlock, SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    for (const int threads : {2, 8}) {
      OptimizerOptions options =
          ParallelOptions(CostModelKind::kSortMerge, threads);
      options.simd = level;
      Result<OptimizeOutcome> outcome =
          OptimizeJoin(instance.catalog, instance.graph, options);
      ASSERT_TRUE(outcome.ok())
          << SimdLevelName(level) << " threads=" << threads;
      EXPECT_EQ(outcome->cost, baseline->cost);
      ExpectTablesBitIdentical(&outcome->table, &baseline->table);
      EXPECT_EQ(outcome->counters.loop_iterations,
                baseline->counters.loop_iterations);
      EXPECT_EQ(outcome->counters.improvements,
                baseline->counters.improvements);
    }
  }
}

TEST(ParallelDeterminismTest, TieBreaksIdenticalUnderSimdAndThreads) {
  // Equal-cardinality Cartesian products make every same-size split of a
  // subset cost exactly the same; the recorded best_lhs is then purely the
  // first strict improvement in successor order. Pin that choice: the
  // best_lhs column (not just the cost) must match the sequential scalar
  // run lane for lane under every kernel and thread count.
  const std::vector<double> cards(12, 100.0);
  Result<Catalog> catalog = Catalog::FromCardinalities(cards);
  ASSERT_TRUE(catalog.ok());
  OptimizerOptions reference = ParallelOptions(CostModelKind::kNaive, 1);
  reference.simd = SimdLevel::kScalar;
  Result<OptimizeOutcome> baseline = OptimizeCartesian(*catalog, reference);
  ASSERT_TRUE(baseline.ok());
  for (const SimdLevel level : {SimdLevel::kBlock, SimdLevel::kAvx512}) {
    for (const int threads : {1, 4}) {
      OptimizerOptions options = ParallelOptions(CostModelKind::kNaive,
                                                 threads);
      options.simd = level;
      Result<OptimizeOutcome> outcome = OptimizeCartesian(*catalog, options);
      ASSERT_TRUE(outcome.ok());
      const std::size_t rows = static_cast<std::size_t>(baseline->table.size());
      ASSERT_EQ(std::memcmp(outcome->table.best_lhs_data(),
                            baseline->table.best_lhs_data(),
                            rows * sizeof(std::uint32_t)),
                0)
          << SimdLevelName(level) << " threads=" << threads;
    }
  }
}

TEST(ParallelDeterminismTest, AutoThreadCountIsValidConfiguration) {
  // num_threads = 0 resolves to the hardware thread count; on any machine
  // the result must still be exact and bit-stable.
  const testing::RandomInstance instance =
      testing::MakeRandomInstance(12, /*seed=*/11);
  Result<OptimizeOutcome> baseline = OptimizeJoin(
      instance.catalog, instance.graph, OptimizerOptions{});
  ASSERT_TRUE(baseline.ok());
  OptimizerOptions automatic;
  automatic.parallel.num_threads = 0;
  automatic.parallel.min_parallel_rank = 4;
  Result<OptimizeOutcome> outcome =
      OptimizeJoin(instance.catalog, instance.graph, automatic);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->cost, baseline->cost);
  ExpectTablesBitIdentical(&outcome->table, &baseline->table);
}

}  // namespace
}  // namespace blitz
