#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/bruteforce.h"
#include "core/optimizer.h"
#include "plan/evaluate.h"
#include "plan/plan.h"
#include "test_util.h"

namespace blitz {
namespace {

using ::blitz::testing::Figure3Graph;
using ::blitz::testing::MakeRandomInstance;
using ::blitz::testing::Table1Catalog;

TEST(BlitzsplitJoinTest, AllSelectivitiesOneMatchesCartesian) {
  const Catalog catalog = Table1Catalog();
  const JoinGraph empty_graph(4);
  Result<OptimizeOutcome> join =
      OptimizeJoin(catalog, empty_graph, OptimizerOptions{});
  Result<OptimizeOutcome> cartesian =
      OptimizeCartesian(catalog, OptimizerOptions{});
  ASSERT_TRUE(join.ok());
  ASSERT_TRUE(cartesian.ok());
  EXPECT_EQ(join->cost, cartesian->cost);
  for (std::uint64_t s = 1; s < join->table.size(); ++s) {
    const RelSet set = RelSet::FromWord(s);
    EXPECT_DOUBLE_EQ(join->table.card(set), cartesian->table.card(set));
    EXPECT_EQ(join->table.cost(set), cartesian->table.cost(set));
  }
}

TEST(BlitzsplitJoinTest, DpCardinalitiesMatchInducedSubgraphDefinition) {
  const Catalog catalog = Table1Catalog();
  const JoinGraph graph = Figure3Graph();
  Result<OptimizeOutcome> outcome =
      OptimizeJoin(catalog, graph, OptimizerOptions{});
  ASSERT_TRUE(outcome.ok());
  std::vector<double> base_cards = {10, 20, 30, 40};
  for (std::uint64_t s = 1; s < outcome->table.size(); ++s) {
    const RelSet set = RelSet::FromWord(s);
    const double expected = graph.JoinCardinality(set, base_cards);
    EXPECT_NEAR(outcome->table.card(set), expected, 1e-9 * expected)
        << set.ToString();
  }
}

TEST(BlitzsplitJoinTest, PiFanColumnMatchesDirectComputation) {
  const Catalog catalog = Table1Catalog();
  const JoinGraph graph = Figure3Graph();
  Result<OptimizeOutcome> outcome =
      OptimizeJoin(catalog, graph, OptimizerOptions{});
  ASSERT_TRUE(outcome.ok());
  for (std::uint64_t s = 1; s < outcome->table.size(); ++s) {
    const RelSet set = RelSet::FromWord(s);
    if (set.IsSingleton()) continue;
    EXPECT_NEAR(outcome->table.pi_fan(set), graph.PiFan(set), 1e-12)
        << set.ToString();
  }
}

TEST(BlitzsplitJoinTest, Figure3ExampleFanOfABC) {
  // Section 5.3: for S = {A,B,C}, U = {A}, the fan is {AB, AC}, so
  // Pi_fan(S) = selec(AB) * selec(AC).
  const JoinGraph graph = Figure3Graph(0.1, 0.05, 0.02, 0.01);
  const RelSet abc = RelSet::FirstN(3);
  EXPECT_NEAR(graph.PiFan(abc), 0.1 * 0.05, 1e-15);
}

TEST(BlitzsplitJoinTest, ChosenPlanCostMatchesIndependentEvaluator) {
  const Catalog catalog = Table1Catalog();
  const JoinGraph graph = Figure3Graph();
  for (const CostModelKind kind :
       {CostModelKind::kNaive, CostModelKind::kSortMerge,
        CostModelKind::kDiskNestedLoops, CostModelKind::kMinSmDnl}) {
    OptimizerOptions options;
    options.cost_model = kind;
    Result<OptimizeOutcome> outcome = OptimizeJoin(catalog, graph, options);
    ASSERT_TRUE(outcome.ok());
    Result<Plan> plan = Plan::ExtractFromTable(outcome->table);
    ASSERT_TRUE(plan.ok());
    const double evaluated = EvaluateCost(*plan, catalog, graph, kind);
    EXPECT_NEAR(evaluated, outcome->cost,
                1e-5 * std::max(1.0, evaluated))
        << CostModelKindToString(kind);
  }
}

TEST(BlitzsplitJoinTest, MatchesBruteForceOnFigure3) {
  const Catalog catalog = Table1Catalog();
  const JoinGraph graph = Figure3Graph();
  for (const CostModelKind kind :
       {CostModelKind::kNaive, CostModelKind::kSortMerge,
        CostModelKind::kDiskNestedLoops, CostModelKind::kMinSmDnl}) {
    OptimizerOptions options;
    options.cost_model = kind;
    Result<OptimizeOutcome> outcome = OptimizeJoin(catalog, graph, options);
    ASSERT_TRUE(outcome.ok());
    Result<BruteForceResult> brute = OptimizeBruteForce(catalog, graph, kind);
    ASSERT_TRUE(brute.ok());
    EXPECT_NEAR(outcome->cost, brute->cost,
                1e-4 * std::max(1.0, brute->cost))
        << CostModelKindToString(kind);
  }
}

// A classic case where the optimal plan contains a Cartesian product: two
// tiny relations with no connecting predicate, each joined to a huge one.
// Producting the tiny relations first is cheapest; a product-excluding
// optimizer cannot find this plan.
TEST(BlitzsplitJoinTest, OptimalPlanMayContainCartesianProduct) {
  // Producting R0 (card 2) with R2 (card 3) costs 6 and shrinks both probes
  // into R1 at once; any predicate-first plan pays for a ~10^5-tuple
  // intermediate result.
  Result<Catalog> catalog = Catalog::FromCardinalities({2, 1000000, 3});
  ASSERT_TRUE(catalog.ok());
  JoinGraph graph(3);
  ASSERT_TRUE(graph.AddPredicate(0, 1, 0.1).ok());
  ASSERT_TRUE(graph.AddPredicate(1, 2, 0.1).ok());
  Result<OptimizeOutcome> outcome =
      OptimizeJoin(*catalog, graph, OptimizerOptions{});
  ASSERT_TRUE(outcome.ok());
  Result<Plan> plan = Plan::ExtractFromTable(outcome->table);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->CountCartesianProducts(graph), 1) << plan->ToString();
}

TEST(BlitzsplitJoinTest, DisconnectedGraphStillOptimizes) {
  // Two disjoint components — pure product between them; blitzsplit does
  // not care about connectivity at all.
  Result<Catalog> catalog = Catalog::FromCardinalities({10, 20, 30, 40});
  ASSERT_TRUE(catalog.ok());
  JoinGraph graph(4);
  ASSERT_TRUE(graph.AddPredicate(0, 1, 0.1).ok());
  ASSERT_TRUE(graph.AddPredicate(2, 3, 0.1).ok());
  Result<OptimizeOutcome> outcome =
      OptimizeJoin(*catalog, graph, OptimizerOptions{});
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->found_plan());
  Result<Plan> plan = Plan::ExtractFromTable(outcome->table);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->CountCartesianProducts(graph), 1);
}

TEST(BlitzsplitJoinTest, NestedIfsDoNotChangeTheOptimum) {
  const auto instance = MakeRandomInstance(9, /*seed=*/7);
  for (const CostModelKind kind :
       {CostModelKind::kNaive, CostModelKind::kSortMerge,
        CostModelKind::kDiskNestedLoops}) {
    OptimizerOptions nested;
    nested.cost_model = kind;
    nested.nested_ifs = true;
    OptimizerOptions flat = nested;
    flat.nested_ifs = false;
    Result<OptimizeOutcome> a =
        OptimizeJoin(instance.catalog, instance.graph, nested);
    Result<OptimizeOutcome> b =
        OptimizeJoin(instance.catalog, instance.graph, flat);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->cost, b->cost) << CostModelKindToString(kind);
  }
}

TEST(BlitzsplitJoinTest, RejectsMismatchedGraph) {
  const Catalog catalog = Table1Catalog();
  const JoinGraph graph(3);
  Result<OptimizeOutcome> outcome =
      OptimizeJoin(catalog, graph, OptimizerOptions{});
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
}

TEST(BlitzsplitJoinTest, StarQueryPrefersJoiningThroughTheHub) {
  // Star: small hub, large satellites, selective predicates. The optimal
  // plan should start from the hub and never product two satellites when
  // that is more expensive.
  Result<Catalog> catalog =
      Catalog::FromCardinalities({1000, 1000, 1000, 1000, 100});
  ASSERT_TRUE(catalog.ok());
  JoinGraph graph(5);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(graph.AddPredicate(4, i, 1e-3).ok());
  }
  Result<OptimizeOutcome> outcome =
      OptimizeJoin(*catalog, graph, OptimizerOptions{});
  ASSERT_TRUE(outcome.ok());
  Result<Plan> plan = Plan::ExtractFromTable(outcome->table);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->CountCartesianProducts(graph), 0) << plan->ToString();
  Result<BruteForceResult> brute =
      OptimizeBruteForce(*catalog, graph, CostModelKind::kNaive);
  ASSERT_TRUE(brute.ok());
  EXPECT_NEAR(outcome->cost, brute->cost, 1e-4 * brute->cost);
}

TEST(BlitzsplitJoinTest, ReoptimizeInPlaceReproducesResult) {
  const auto instance = MakeRandomInstance(8, /*seed=*/3);
  OptimizerOptions options;
  Result<OptimizeOutcome> outcome =
      OptimizeJoin(instance.catalog, instance.graph, options);
  ASSERT_TRUE(outcome.ok());
  const float first_cost = outcome->cost;
  Result<float> again = ReoptimizeJoinInPlace(
      instance.catalog, instance.graph, options, &outcome->table, nullptr);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, first_cost);
}

TEST(BlitzsplitJoinTest, ReoptimizeInPlaceRejectsMismatchedColumns) {
  const auto instance = MakeRandomInstance(6, /*seed=*/4);
  OptimizerOptions naive;
  Result<OptimizeOutcome> outcome =
      OptimizeJoin(instance.catalog, instance.graph, naive);
  ASSERT_TRUE(outcome.ok());
  OptimizerOptions sm;
  sm.cost_model = CostModelKind::kSortMerge;  // needs the aux column
  Result<float> again = ReoptimizeJoinInPlace(
      instance.catalog, instance.graph, sm, &outcome->table, nullptr);
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace blitz
