// Regenerates Figure 2 of the paper: Cartesian-product optimization time as
// a function of the number of relations n, together with a least-squares fit
// of formula (3),
//     3^n T_loop + (ln2/2) n 2^n T_cond + 2^n T_subset,
// reporting the fitted machine constants (the paper inferred T_loop of about
// 180 ns on a SPARCstation 2 and 50 ns on an HP 9000/755).
//
// Modes:
//   bench_fig2_cartesian                # the classic text table + fit
//   bench_fig2_cartesian --json <path>  # machine-readable SIMD comparison
//
// The JSON mode is the recorded perf baseline for the SIMD split-filter
// kernel (BENCH_fig2.json at the repo root), in the unified
// "blitz-bench-v1" schema tools/bench_diff consumes: for each cost model
// in {naive, sm, dnl} and each n it reports min-of-k per-optimization
// times under --simd=scalar and under the auto-resolved SIMD kernel, plus
// the speedup ratio and whether kAuto would engage the kernel at that
// (model, n). Minimum-of-k (not mean) is the standard perf-baseline
// estimator: it discards scheduler noise, which is strictly additive.
//
// Environment knobs: BLITZ_BENCH_MIN_SECONDS (timing floor per point,
// default 0.05), BLITZ_FIG2_MAX_N (default 17 text / 15 json),
// BLITZ_FIG2_SAMPLES (min-of-k sample count in json mode, default 5).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "benchlib/bench_json.h"
#include "benchlib/table_out.h"
#include "benchlib/timing.h"
#include "catalog/catalog.h"
#include "common/check.h"
#include "common/math_util.h"
#include "common/strings.h"
#include "core/optimizer.h"
#include "simd/dispatch.h"

namespace blitz {
namespace {

int RunText() {
  const double min_seconds = BenchMinSeconds(0.05);
  const int min_n = 5;
  const int max_n = BenchEnvInt("BLITZ_FIG2_MAX_N", 17);

  std::printf(
      "Figure 2: Cartesian product optimization times (naive cost model,\n"
      "equal base cardinalities of 100)\n\n");

  std::vector<int> ns;
  std::vector<double> times;
  std::vector<int> reps;
  TextTable out;
  out.SetHeader({"n", "time/opt (ms)", "reps", "formula(3) fit (ms)"});

  for (int n = min_n; n <= max_n; ++n) {
    Result<Catalog> catalog =
        Catalog::FromCardinalities(std::vector<double>(n, 100.0));
    BLITZ_CHECK(catalog.ok());
    const TimingResult timing = TimeIt(
        [&] {
          Result<OptimizeOutcome> outcome =
              OptimizeCartesian(*catalog, OptimizerOptions{});
          BLITZ_CHECK(outcome.ok());
        },
        min_seconds);
    ns.push_back(n);
    times.push_back(timing.seconds_per_run);
    reps.push_back(timing.repetitions);
  }

  // Fit over n <= 15 only: "Formula (3) ... tracks them closely until
  // n ~ 15 (at which point cache effectiveness declines)".
  int fit_count = 0;
  while (fit_count < static_cast<int>(ns.size()) && ns[fit_count] <= 15) {
    ++fit_count;
  }
  double t_loop = 0;
  double t_cond = 0;
  double t_subset = 0;
  const bool fitted = FitFormula3(ns.data(), times.data(), fit_count,
                                  &t_loop, &t_cond, &t_subset);

  for (size_t i = 0; i < ns.size(); ++i) {
    const double fit =
        fitted ? Formula3(ns[i], t_loop, t_cond, t_subset) : 0.0;
    out.AddRow({StrFormat("%d", ns[i]), StrFormat("%.3f", times[i] * 1e3),
                StrFormat("%d", reps[i]), StrFormat("%.3f", fit * 1e3)});
  }
  std::printf("%s\n", out.ToString().c_str());

  if (fitted) {
    std::printf("Fitted constants of formula (3):\n");
    std::printf("  T_loop   = %8.2f ns  (paper: ~180 ns Sun, ~50 ns HP)\n",
                t_loop * 1e9);
    std::printf("  T_cond   = %8.2f ns\n", t_cond * 1e9);
    std::printf("  T_subset = %8.2f ns\n", t_subset * 1e9);
  } else {
    std::printf("Not enough points to fit formula (3).\n");
  }
  return 0;
}

/// Min-of-k per-optimization seconds for one (catalog, model, simd) point.
double MinOfK(const Catalog& catalog, CostModelKind model, SimdLevel simd,
              int samples, double min_seconds) {
  OptimizerOptions options;
  options.cost_model = model;
  options.simd = simd;
  double best = 0;
  for (int sample = 0; sample < samples; ++sample) {
    const TimingResult timing = TimeIt(
        [&] {
          Result<OptimizeOutcome> outcome =
              OptimizeCartesian(catalog, options);
          BLITZ_CHECK(outcome.ok());
        },
        min_seconds);
    if (sample == 0 || timing.seconds_per_run < best) {
      best = timing.seconds_per_run;
    }
  }
  return best;
}

int RunJson(const char* path) {
  const double min_seconds = BenchMinSeconds(0.05);
  const int min_n = 5;
  const int max_n = BenchEnvInt("BLITZ_FIG2_MAX_N", 15);
  const int samples = BenchEnvInt("BLITZ_FIG2_SAMPLES", 5);
  const SimdLevel resolved = ResolveSimdLevel(SimdLevel::kAuto);

  const struct {
    CostModelKind kind;
    const char* name;
  } kModels[] = {{CostModelKind::kNaive, "naive"},
                 {CostModelKind::kSortMerge, "sm"},
                 {CostModelKind::kDiskNestedLoops, "dnl"}};

  BenchReport report;
  report.bench = "fig2_cartesian";
  report.AddMeta("setup",
                 "equal base cardinalities of 100, pure Cartesian product");
  report.AddMeta("estimator",
                 StrFormat("min of %d adaptive timings", samples));
  report.AddMeta("min_seconds_per_timing", StrFormat("%g", min_seconds));
  report.AddMeta("simd_resolved", SimdLevelName(resolved));

  for (const auto& model : kModels) {
    // The SIMD column *forces* the resolved kernel so every model's kernel
    // cost is on record; auto_engages says whether kAuto would actually
    // run it at this (model, n) — only gate-tight models at or above
    // kSimdMinAutoRelations (see CostModel::kSplitGateTight,
    // simd/dispatch.h, and DESIGN.md section 9).
    OptimizerOptions auto_options;
    auto_options.cost_model = model.kind;
    for (int n = min_n; n <= max_n; ++n) {
      Result<Catalog> catalog =
          Catalog::FromCardinalities(std::vector<double>(n, 100.0));
      BLITZ_CHECK(catalog.ok());
      const bool auto_engages =
          EffectivePassSimdLevel(auto_options, n) != SimdLevel::kScalar;
      const double scalar_s = MinOfK(*catalog, model.kind,
                                     SimdLevel::kScalar, samples,
                                     min_seconds);
      const double simd_s =
          MinOfK(*catalog, model.kind, resolved, samples, min_seconds);
      const double speedup = simd_s > 0 ? scalar_s / simd_s : 0.0;
      const std::string prefix = StrFormat("%s/n%02d", model.name, n);
      report.AddPoint(prefix + "/scalar", scalar_s * 1e3, "ms");
      report.AddPoint(prefix + "/simd", simd_s * 1e3, "ms");
      report.AddPoint(prefix + "/speedup", speedup, "ratio");
      report.AddPoint(prefix + "/auto_engages", auto_engages ? 1 : 0,
                      "bool");
      // Progress to stderr so long runs are observable.
      std::fprintf(stderr,
                   "%s n=%-2d scalar %8.3f ms  %s %8.3f ms  %.2fx%s\n",
                   model.name, n, scalar_s * 1e3, SimdLevelName(resolved),
                   simd_s * 1e3, speedup, auto_engages ? "  [auto]" : "");
    }
  }
  const Status status = WriteBenchJsonFile(report, path);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (simd level %s)\n", path, SimdLevelName(resolved));
  return 0;
}

}  // namespace
}  // namespace blitz

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      return blitz::RunJson(argv[i + 1]);
    }
  }
  return blitz::RunText();
}
