#ifndef BLITZ_TESTING_MINIMIZE_H_
#define BLITZ_TESTING_MINIMIZE_H_

#include <functional>
#include <optional>

#include "testing/fuzzer.h"

namespace blitz::fuzz {

/// Re-check predicate: returns true while the failure still reproduces on
/// the candidate case (typically a lambda around RunDifferentialCase).
using StillFails = std::function<bool(const FuzzCase&)>;

/// Greedy delta-debugging of a failing case. Repeatedly tries, in order:
/// dropping one relation (with its incident predicates, reindexing the
/// rest), dropping one predicate, and weakening one predicate's selectivity
/// to the nearest power of ten — keeping any reduction under which
/// `still_fails` stays true, until a full round makes no progress. The
/// result's label is the original label with "-min" appended; its spec
/// still names the originating (seed, case_index) for provenance.
///
/// `still_fails(failing)` is assumed true on entry; the function never
/// returns a case that does not reproduce.
FuzzCase MinimizeCase(const FuzzCase& failing, const StillFails& still_fails);

/// Single reduction steps, exposed for tests. Each returns the reduced case
/// or nothing when the step does not apply (too few relations, no such
/// predicate, selectivity already a power of ten, rebuild failed).
std::optional<FuzzCase> DropRelation(const FuzzCase& c, int relation);
std::optional<FuzzCase> DropPredicate(const FuzzCase& c, int predicate_index);
std::optional<FuzzCase> SnapSelectivity(const FuzzCase& c,
                                        int predicate_index);

}  // namespace blitz::fuzz

#endif  // BLITZ_TESTING_MINIMIZE_H_
