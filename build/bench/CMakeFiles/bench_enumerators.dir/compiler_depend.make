# Empty compiler generated dependencies file for bench_enumerators.
# This may be replaced when dependencies are built.
