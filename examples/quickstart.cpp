// Quickstart: optimize a five-way join in a dozen lines.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "catalog/catalog.h"
#include "core/optimizer.h"
#include "plan/plan.h"
#include "query/join_graph.h"

int main() {
  using namespace blitz;

  // 1. Describe the base relations (name, estimated cardinality).
  Result<Catalog> catalog = Catalog::Create({
      {"customer", 15000, 64},
      {"orders", 150000, 64},
      {"lineitem", 600000, 64},
      {"part", 20000, 64},
      {"supplier", 1000, 64},
  });
  if (!catalog.ok()) {
    std::fprintf(stderr, "%s\n", catalog.status().ToString().c_str());
    return 1;
  }

  // 2. Describe the join predicates (an undirected graph with
  //    selectivities).
  JoinGraph graph(catalog->num_relations());
  graph.AddPredicate(0, 1, 1.0 / 15000);   // customer - orders
  graph.AddPredicate(1, 2, 1.0 / 150000);  // orders - lineitem
  graph.AddPredicate(2, 3, 1.0 / 20000);   // lineitem - part
  graph.AddPredicate(2, 4, 1.0 / 1000);    // lineitem - supplier

  // 3. Optimize. The optimizer searches the complete space of bushy plans,
  //    Cartesian products included, in O(3^n) time and O(2^n) space.
  OptimizerOptions options;
  options.cost_model = CostModelKind::kDiskNestedLoops;
  Result<OptimizeOutcome> outcome = OptimizeJoin(*catalog, graph, options);
  if (!outcome.ok()) {
    std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
    return 1;
  }

  // 4. Extract and print the optimal plan.
  Result<Plan> plan = Plan::ExtractFromTable(outcome->table);
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("optimal plan: %s\n", plan->ToString(&catalog.value()).c_str());
  std::printf("estimated cost: %g\n", static_cast<double>(outcome->cost));
  std::printf("estimated result cardinality: %g\n",
              outcome->table.card(catalog->AllRelations()));
  std::printf("plan shape: %s, depth %d\n",
              plan->IsLeftDeep() ? "left-deep" : "bushy", plan->Depth());
  return 0;
}
