#include "common/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace blitz {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    // +1 for the terminating NUL that vsnprintf always writes.
    std::vsnprintf(out.data(), static_cast<size_t>(needed) + 1, fmt,
                   args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> StrSplit(std::string_view s, char delim,
                                  bool keep_empty) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (start <= s.size()) {
    size_t end = s.find(delim, start);
    if (end == std::string_view::npos) end = s.size();
    std::string_view field = s.substr(start, end - start);
    if (keep_empty || !field.empty()) {
      fields.emplace_back(field);
    }
    if (end == s.size()) break;
    start = end + 1;
  }
  return fields;
}

std::string_view StrTrim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool ParseDouble(std::string_view s, double* out) {
  if (s.empty() || s.size() > 63) return false;
  char buf[64];
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(buf, &end);
  if (errno != 0 || end != buf + s.size()) return false;
  *out = value;
  return true;
}

bool ParseInt(std::string_view s, int* out) {
  if (s.empty() || s.size() > 63) return false;
  char buf[64];
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  const long value = std::strtol(buf, &end, 10);
  if (errno != 0 || end != buf + s.size()) return false;
  if (value < 0 || value > 2147483647L) return false;
  *out = static_cast<int>(value);
  return true;
}

}  // namespace blitz
