#ifndef BLITZ_OBS_METRICS_H_
#define BLITZ_OBS_METRICS_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace blitz {

/// Minimal monotonic timer for feeding RecordLatency at instrumentation
/// sites below benchlib in the dependency order (benchlib's Stopwatch
/// depends on core). Costs one clock read at construction.
class MetricTimer {
 public:
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

/// Fixed-bucket histogram with percentile summaries. Bucket boundaries are
/// immutable after construction; Record is O(log buckets). Values at or
/// above the last boundary land in an unbounded overflow bucket.
///
/// Not internally synchronized — MetricsRegistry serializes access; a
/// standalone Histogram is single-threaded.
class Histogram {
 public:
  /// `bounds` must be strictly increasing and non-empty. Bucket i covers
  /// [bounds[i-1], bounds[i]) with bucket 0 covering (-inf, bounds[0]).
  explicit Histogram(std::vector<double> bounds);

  /// Exponential 1us..100s boundaries suited to wall-clock latencies in
  /// seconds (roughly 1-2-5 per decade).
  static std::vector<double> DefaultLatencyBounds();

  void Record(double value);

  /// Merges another histogram recorded over *identical* bounds (checked);
  /// the fold the rank-parallel workers use to combine thread-local
  /// histograms into one. Counts, sum, and extrema merge exactly;
  /// percentile estimates are those of the merged buckets.
  Histogram& operator+=(const Histogram& other);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double mean() const { return count_ == 0 ? 0 : sum_ / count_; }

  /// Estimated value at percentile `p` in [0, 100], linearly interpolated
  /// inside the containing bucket (clamped to the observed min/max so a
  /// single sample reports itself at every percentile). 0 when empty.
  double Percentile(double p) const;

  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;  ///< bounds_.size() + 1 entries.
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Point-in-time copy of one histogram's summary statistics.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

/// Point-in-time copy of a whole registry, sorted by metric name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
  std::vector<std::pair<std::string, std::string>> labels;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty() &&
           labels.empty();
  }
};

/// Thread-safe registry of named counters (monotonic), gauges (last/max
/// value), and latency histograms. Mirrors the NoInstrumentation policy
/// pattern at the registry level: a disabled registry ignores every write
/// and never materializes a metric, so instrumented code paths stay cheap
/// without compile-time specialization.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(bool enabled = true) : enabled_(enabled) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  bool enabled() const { return enabled_; }

  /// Adds `delta` to the named monotonic counter (created at first touch).
  void AddCounter(std::string_view name, std::uint64_t delta = 1);

  /// Sets the named gauge to `value`.
  void SetGauge(std::string_view name, double value);

  /// Raises the named gauge to `value` if larger (peak tracking).
  void MaxGauge(std::string_view name, double value);

  /// Records one latency observation (seconds) into the named histogram.
  void RecordLatency(std::string_view name, double seconds);

  /// Sets a string-valued label (last write wins) — provenance facts like
  /// the resolved SIMD level or the tier that served the last query, which
  /// a numeric metric cannot carry. Exported under "labels" in ToJson().
  void SetLabel(std::string_view name, std::string_view value);

  MetricsSnapshot TakeSnapshot() const;

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,
  /// max,p50,p95,p99},...},"labels":{name:"value",...}} — always a valid
  /// JSON object.
  std::string ToJson() const;

  /// One metric per line, for terminal output.
  std::string ToString() const;

  void Reset();

 private:
  const bool enabled_;
  mutable std::mutex mu_;
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
  std::map<std::string, std::string, std::less<>> labels_;
};

/// Process-global registry hook. Instrumented library code writes through
/// GlobalMetrics() when non-null and pays one atomic load otherwise, so the
/// default (no registry installed) is near-zero-cost. Not owned; the caller
/// keeps the registry alive while installed and uninstalls (nullptr) before
/// destroying it.
MetricsRegistry* GlobalMetrics();
void SetGlobalMetrics(MetricsRegistry* registry);

/// JSON dump of the global registry ("{}" when none is installed).
std::string DumpMetricsJson();

}  // namespace blitz

#endif  // BLITZ_OBS_METRICS_H_
