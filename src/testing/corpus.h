#ifndef BLITZ_TESTING_CORPUS_H_
#define BLITZ_TESTING_CORPUS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "cost/cost_model.h"
#include "testing/fuzzer.h"

namespace blitz::fuzz {

/// Failure-corpus management: every mismatch the fuzzer finds is written as
/// a replayable `.bjq` file (tests/corpus/ in-tree), and the corpus-replay
/// test re-runs every file through the full configuration grid so a fixed
/// bug stays fixed.

/// Writes `c` as `<dir>/<c.label>.bjq` (creating `dir` if needed), with
/// `note` and the case provenance as leading comments. Returns the path.
Result<std::string> WriteCorpusCase(const std::string& dir, const FuzzCase& c,
                                    CostModelKind cost_model,
                                    const std::string& note);

/// All `*.bjq` paths under `dir`, sorted; empty (not an error) when the
/// directory is missing or holds no cases.
std::vector<std::string> ListCorpusFiles(const std::string& dir);

/// Parses a corpus file back into a runnable case; the label is the file's
/// basename.
Result<FuzzCase> LoadCorpusCase(const std::string& path);

}  // namespace blitz::fuzz

#endif  // BLITZ_TESTING_CORPUS_H_
