#include "plan/serialize.h"

#include <gtest/gtest.h>

#include "baseline/random_plans.h"
#include "common/rng.h"
#include "test_util.h"

namespace blitz {
namespace {

using ::blitz::testing::Table1Catalog;

TEST(SerializeTest, LeafOnly) {
  EXPECT_EQ(SerializePlan(Plan::Leaf(3)), "R3");
  const Catalog catalog = Table1Catalog();
  EXPECT_EQ(SerializePlan(Plan::Leaf(0), &catalog), "A");
}

TEST(SerializeTest, NestedJoins) {
  const Plan plan = Plan::Join(Plan::Join(Plan::Leaf(0), Plan::Leaf(3)),
                               Plan::Join(Plan::Leaf(1), Plan::Leaf(2)));
  EXPECT_EQ(SerializePlan(plan), "((R0 R3) (R1 R2))");
  const Catalog catalog = Table1Catalog();
  EXPECT_EQ(SerializePlan(plan, &catalog), "((A D) (B C))");
}

TEST(SerializeTest, AlgorithmSuffix) {
  Plan plan = Plan::Join(Plan::Leaf(0), Plan::Leaf(1));
  plan.mutable_root().algorithm = JoinAlgorithm::kHash;
  EXPECT_EQ(SerializePlan(plan), "(R0 R1)@hash");
}

TEST(SerializeTest, EmptyPlan) {
  EXPECT_EQ(SerializePlan(Plan()), "()");
}

TEST(ParsePlanTest, ParsesLeafAndJoin) {
  Result<Plan> leaf = ParsePlan("R5");
  ASSERT_TRUE(leaf.ok());
  EXPECT_EQ(leaf->relations(), RelSet::Singleton(5));

  Result<Plan> join = ParsePlan("(R0 (R1 R2))");
  ASSERT_TRUE(join.ok());
  EXPECT_EQ(join->NumLeaves(), 3);
  EXPECT_FALSE(join->IsLeftDeep());
}

TEST(ParsePlanTest, ResolvesCatalogNames) {
  const Catalog catalog = Table1Catalog();
  Result<Plan> plan = ParsePlan("((A D) (B C))", &catalog);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->relations(), RelSet::FirstN(4));
  EXPECT_EQ(plan->root().left->set,
            RelSet::Singleton(0) | RelSet::Singleton(3));
}

TEST(ParsePlanTest, ParsesAlgorithmAnnotations) {
  Result<Plan> plan = ParsePlan("((R0 R1)@sort-merge R2)@nested-loops");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->root().algorithm, JoinAlgorithm::kNestedLoops);
  EXPECT_EQ(plan->root().left->algorithm, JoinAlgorithm::kSortMerge);
}

TEST(ParsePlanTest, RoundTripsRandomPlans) {
  Rng rng(17);
  const Catalog catalog = Table1Catalog();
  for (int trial = 0; trial < 30; ++trial) {
    const Plan plan = RandomBushyPlan(RelSet::FirstN(4), &rng);
    Result<Plan> reparsed = ParsePlan(SerializePlan(plan));
    ASSERT_TRUE(reparsed.ok());
    EXPECT_TRUE(plan.StructurallyEquals(*reparsed));
    // Also through catalog names.
    Result<Plan> named =
        ParsePlan(SerializePlan(plan, &catalog), &catalog);
    ASSERT_TRUE(named.ok());
    EXPECT_TRUE(plan.StructurallyEquals(*named));
  }
}

TEST(ParsePlanTest, RoundTripsLargerRandomPlans) {
  Rng rng(23);
  for (int trial = 0; trial < 20; ++trial) {
    const Plan plan = RandomBushyPlan(RelSet::FirstN(12), &rng);
    Result<Plan> reparsed = ParsePlan(SerializePlan(plan));
    ASSERT_TRUE(reparsed.ok());
    EXPECT_TRUE(plan.StructurallyEquals(*reparsed));
  }
}

TEST(ParsePlanTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParsePlan("").ok());
  EXPECT_FALSE(ParsePlan("(R0").ok());
  EXPECT_FALSE(ParsePlan("(R0 R1) extra").ok());
  EXPECT_FALSE(ParsePlan("(R0 R1)@warp-speed").ok());
  EXPECT_FALSE(ParsePlan("(R0 R0)").ok());       // duplicate relation
  EXPECT_FALSE(ParsePlan("(R0 )").ok());
  EXPECT_FALSE(ParsePlan("bogus").ok());         // no catalog, not R<i>
  EXPECT_FALSE(ParsePlan("R99").ok());           // beyond kMaxRelations
}

TEST(ParsePlanTest, UnknownNameWithoutCatalogFails) {
  const Catalog catalog = Table1Catalog();
  EXPECT_TRUE(ParsePlan("(A B)", &catalog).ok());
  EXPECT_FALSE(ParsePlan("(A B)").ok());
  EXPECT_FALSE(ParsePlan("(A zz)", &catalog).ok());
}

TEST(ParsePlanTest, WhitespaceTolerant) {
  Result<Plan> plan = ParsePlan("  ( R0   ( R1  R2 ) )  ");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->NumLeaves(), 3);
}

}  // namespace
}  // namespace blitz
