file(REMOVE_RECURSE
  "CMakeFiles/interesting_orders_test.dir/interesting_orders_test.cc.o"
  "CMakeFiles/interesting_orders_test.dir/interesting_orders_test.cc.o.d"
  "interesting_orders_test"
  "interesting_orders_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interesting_orders_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
