# Empty compiler generated dependencies file for optimize_and_execute.
# This may be replaced when dependencies are built.
