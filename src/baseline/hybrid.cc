#include "baseline/hybrid.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

#include "baseline/greedy.h"
#include "baseline/local_search.h"
#include "common/check.h"
#include "common/rng.h"
#include "core/optimizer.h"
#include "governor/faultpoints.h"
#include "governor/governor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "plan/evaluate.h"

namespace blitz {

namespace {

struct Unit {
  Plan plan;
  RelSet base_set;
  double card = 0;
};

/// Grows a block of up to `limit` units, BFS-style through unit-level
/// connectivity starting from a random seed; pads with random unconnected
/// units if the reachable component is smaller than 2.
std::vector<size_t> PickBlock(const std::vector<Unit>& units,
                              const JoinGraph& graph, int limit, Rng* rng) {
  const size_t n = units.size();
  std::vector<bool> in_block(n, false);
  std::vector<size_t> block;
  std::vector<size_t> frontier;
  const size_t seed = rng->NextBounded(n);
  block.push_back(seed);
  in_block[seed] = true;
  frontier.push_back(seed);
  while (!frontier.empty() && block.size() < static_cast<size_t>(limit)) {
    // Pop a random frontier element for decomposition diversity.
    const size_t pick = rng->NextBounded(frontier.size());
    const size_t current = frontier[pick];
    frontier.erase(frontier.begin() + static_cast<std::ptrdiff_t>(pick));
    for (size_t other = 0;
         other < n && block.size() < static_cast<size_t>(limit); ++other) {
      if (!in_block[other] && graph.AnyEdgeSpans(units[current].base_set,
                                                 units[other].base_set)) {
        in_block[other] = true;
        block.push_back(other);
        frontier.push_back(other);
      }
    }
  }
  // Guarantee progress: a block must fuse at least two units.
  while (block.size() < 2 && block.size() < n) {
    const size_t extra = rng->NextBounded(n);
    if (!in_block[extra]) {
      in_block[extra] = true;
      block.push_back(extra);
    }
  }
  return block;
}

/// Replaces the leaves of a block-level plan (which reference block
/// indexes) with the units' accumulated plans.
Plan ComposePlan(const PlanNode& node, std::vector<Unit>* units,
                 const std::vector<size_t>& block) {
  if (node.is_leaf()) {
    return std::move((*units)[block[static_cast<size_t>(node.relation())]]
                         .plan);
  }
  Plan left = ComposePlan(*node.left, units, block);
  Plan right = ComposePlan(*node.right, units, block);
  return Plan::Join(std::move(left), std::move(right));
}

}  // namespace

Status HybridOptions::Validate() const {
  if (block_size < 2 || block_size > kMaxRelations) {
    return Status::InvalidArgument("block_size must be in [2, kMaxRelations]");
  }
  if (restarts < 1) {
    return Status::InvalidArgument("need at least one restart");
  }
  if (polish_moves < 0) {
    return Status::InvalidArgument("polish_moves must be non-negative");
  }
  return parallel.Validate();
}

Result<HybridResult> OptimizeHybrid(const Catalog& catalog,
                                    const JoinGraph& graph,
                                    const HybridOptions& options) {
  const int n = catalog.num_relations();
  if (graph.num_relations() != n) {
    return Status::InvalidArgument("catalog/graph relation-count mismatch");
  }
  BLITZ_RETURN_IF_ERROR(options.Validate());
  // Fault point: fail the whole hybrid tier deterministically so the
  // degradation ladder's hybrid -> greedy step is testable.
  if (std::optional<FaultSpec> fault = FaultHit(kFaultHybridRun)) {
    if (fault->kind == FaultKind::kFailStatus) return fault->status;
  }
  // One shared clock for every restart, block solve, and polish loop.
  const ResourceBudget budget = options.budget.Resolved();
  GovernorState governor(budget);
  if (governor.active() && governor.CheckNow()) return governor.status();

  const MetricTimer timer;
  TraceSpan span("OptimizeHybrid");
  span.AddArg("n", n);
  span.AddArg("restarts", options.restarts);

  // The cardinality seam: null or exact keeps the Section 5.1 unit
  // statistics verbatim; a non-exact estimator replaces every cardinality,
  // pair selectivity, and candidate-plan cost the search reads.
  const CardinalityEstimator* est =
      (options.estimator != nullptr && !options.estimator->exact())
          ? options.estimator
          : nullptr;
  if (est != nullptr && est->num_relations() != n) {
    return Status::InvalidArgument("estimator/catalog relation-count mismatch");
  }

  std::vector<double> base_cards(n);
  for (int i = 0; i < n; ++i) {
    base_cards[i] = est != nullptr ? est->BaseCardinality(i)
                                   : catalog.cardinality(i);
  }

  const auto plan_cost = [&](const Plan& plan) {
    return est != nullptr
               ? EvaluateCost(plan, *est, options.cost_model)
               : EvaluateCost(plan, catalog, graph, options.cost_model);
  };

  Rng rng(options.seed);
  HybridResult best;
  best.cost = std::numeric_limits<double>::infinity();
  bool budget_exhausted = false;

  auto polish = [&](Plan* plan, double* cost) {
    if (!options.polish || n < 3) return;
    for (int move = 0; move < options.polish_moves; ++move) {
      Plan candidate = plan->Clone();
      if (!ApplyRandomMove(&candidate, &rng)) break;
      const double candidate_cost = plan_cost(candidate);
      if (candidate_cost < *cost) {
        *plan = std::move(candidate);
        *cost = candidate_cost;
      }
    }
  };

  if (options.seed_with_greedy && n >= 2) {
    Result<GreedyResult> greedy =
        OptimizeGreedy(catalog, graph, options.cost_model,
                       GreedyCriterion::kMinOutputCardinality,
                       options.estimator);
    if (greedy.ok()) {
      double cost = greedy->cost;
      Plan plan = std::move(greedy->plan);
      polish(&plan, &cost);
      if (cost < best.cost) {
        best.cost = cost;
        best.plan = std::move(plan);
      }
    }
  }

  for (int restart = 0; restart < options.restarts; ++restart) {
    // If the budget ran out, return what the finished restarts found (a
    // valid plan beats an error) — fail only when nothing completed yet.
    if (governor.active() && governor.CheckNow()) {
      if (best.cost < std::numeric_limits<double>::infinity()) break;
      return governor.status();
    }
    TraceSpan restart_span("hybrid_restart");
    restart_span.AddArg("restart", restart);
    std::vector<Unit> units;
    units.reserve(n);
    for (int i = 0; i < n; ++i) {
      units.push_back(Unit{Plan::Leaf(i), RelSet::Singleton(i),
                           base_cards[i]});
    }

    while (units.size() > 1) {
      const std::vector<size_t> block = PickBlock(
          units, graph,
          std::min<int>(options.block_size,
                        static_cast<int>(units.size())),
          &rng);

      // Block-level statistics: each unit becomes a pseudo-relation.
      std::vector<double> block_cards(block.size());
      for (size_t m = 0; m < block.size(); ++m) {
        block_cards[m] = units[block[m]].card;
      }
      Result<Catalog> block_catalog = Catalog::FromCardinalities(block_cards);
      if (!block_catalog.ok()) return block_catalog.status();
      JoinGraph block_graph(static_cast<int>(block.size()));
      for (size_t a = 0; a < block.size(); ++a) {
        for (size_t b = a + 1; b < block.size(); ++b) {
          if (graph.AnyEdgeSpans(units[block[a]].base_set,
                                 units[block[b]].base_set)) {
            const double selectivity =
                est != nullptr
                    ? est->EstimateSpanSelectivity(units[block[a]].base_set,
                                                   units[block[b]].base_set)
                    : graph.PiSpan(units[block[a]].base_set,
                                   units[block[b]].base_set);
            BLITZ_RETURN_IF_ERROR(block_graph.AddPredicate(
                static_cast<int>(a), static_cast<int>(b), selectivity));
          }
        }
      }

      // Exact bushy-with-products solve of the block, governed by the
      // run-wide budget (absolute deadline, per-table memory cap).
      OptimizerOptions dp_options;
      dp_options.cost_model = options.cost_model;
      dp_options.budget = budget;
      dp_options.parallel = options.parallel;
      dp_options.simd = options.simd;
      Result<OptimizeOutcome> outcome =
          OptimizeJoin(*block_catalog, block_graph, dp_options);
      if (!outcome.ok()) {
        // A budget abort mid-restart falls back to the best finished
        // restart if there is one; anything else propagates.
        const StatusCode code = outcome.status().code();
        const bool budget_abort = code == StatusCode::kDeadlineExceeded ||
                                  code == StatusCode::kCancelled ||
                                  code == StatusCode::kResourceExhausted;
        if (budget_abort &&
            best.cost < std::numeric_limits<double>::infinity()) {
          budget_exhausted = true;
          break;
        }
        return outcome.status();
      }
      ++best.dp_invocations;
      Result<Plan> block_plan = Plan::ExtractFromTable(outcome->table);
      if (!block_plan.ok()) return block_plan.status();

      // Fuse the block into one unit carrying the composed plan.
      Unit fused;
      fused.plan = ComposePlan(block_plan->root(), &units, block);
      fused.base_set = fused.plan.relations();
      fused.card = est != nullptr
                       ? est->EstimateCardinality(fused.base_set)
                       : graph.JoinCardinality(fused.base_set, base_cards);

      // Remove the block's units (descending index order keeps positions
      // valid), then append the fused unit.
      std::vector<size_t> sorted_block = block;
      std::sort(sorted_block.rbegin(), sorted_block.rend());
      for (const size_t index : sorted_block) {
        units.erase(units.begin() + static_cast<std::ptrdiff_t>(index));
      }
      units.push_back(std::move(fused));
    }

    if (budget_exhausted) break;

    Plan plan = std::move(units[0].plan);
    double cost = plan_cost(plan);
    // Short first-improvement descent around the decomposed solution.
    polish(&plan, &cost);

    restart_span.AddArg("cost", cost);
    if (cost < best.cost) {
      best.cost = cost;
      best.plan = std::move(plan);
    }
  }
  span.AddArg("cost", best.cost);
  span.AddArg("dp_invocations", best.dp_invocations);
  if (MetricsRegistry* metrics = GlobalMetrics()) {
    metrics->AddCounter("hybrid.calls");
    metrics->AddCounter("hybrid.restarts",
                        static_cast<std::uint64_t>(options.restarts));
    metrics->AddCounter("hybrid.dp_invocations",
                        static_cast<std::uint64_t>(best.dp_invocations));
    metrics->RecordLatency("hybrid.seconds", timer.ElapsedSeconds());
  }
  return best;
}

}  // namespace blitz
