#ifndef BLITZ_CORE_SUBSET_ENUM_H_
#define BLITZ_CORE_SUBSET_ENUM_H_

#include <cstdint>

#include "core/relset.h"

namespace blitz {

/// The successor operator of Section 4.2: given the current left-hand-side
/// subset `lhs` of `s` (as bit-vectors), steps to the next subset in the
/// dilated counting order, succ(lhs) = s & (lhs - s). Starting from 0 the
/// first application yields delta_S(1) = s & -s, and repeated application
/// visits delta_S(2), delta_S(3), ..., ending at s itself (= delta_S(2^m - 1)).
constexpr std::uint64_t SubsetSucc(std::uint64_t s, std::uint64_t lhs) {
  return s & (lhs - s);
}

/// The dilation operator delta_S(i) of Section 4.2: distributes the low
/// |S| bits of `i` over the 1-bit positions of `s`. Used in tests to verify
/// the successor trick; the optimizer itself never evaluates delta.
constexpr std::uint64_t Dilate(std::uint64_t s, std::uint64_t i) {
  std::uint64_t out = 0;
  std::uint64_t remaining = s;
  int bit = 0;
  while (remaining != 0) {
    const std::uint64_t lowest = remaining & (~remaining + 1);
    if ((i >> bit) & 1) out |= lowest;
    remaining &= remaining - 1;
    ++bit;
  }
  return out;
}

/// The contraction operator gamma_S (left inverse of Dilate): gathers the
/// bits of `w` at the 1-bit positions of `s` into a dense low-order integer.
constexpr std::uint64_t Contract(std::uint64_t s, std::uint64_t w) {
  std::uint64_t out = 0;
  std::uint64_t remaining = s;
  int bit = 0;
  while (remaining != 0) {
    const std::uint64_t lowest = remaining & (~remaining + 1);
    if (w & lowest) out |= std::uint64_t{1} << bit;
    remaining &= remaining - 1;
    ++bit;
  }
  return out;
}

/// Invokes fn(lhs, rhs) for every split of `s` into nonempty, disjoint
/// (lhs, rhs) with lhs | rhs == s — i.e. every ordered pair; each unordered
/// split is seen twice, once per orientation, exactly as in find_best_split.
template <typename Fn>
void ForEachProperSplit(RelSet s, Fn&& fn) {
  const std::uint64_t sw = s.word();
  for (std::uint64_t lhs = SubsetSucc(sw, 0); lhs != sw;
       lhs = SubsetSucc(sw, lhs)) {
    fn(RelSet::FromWord(lhs), RelSet::FromWord(sw ^ lhs));
  }
}

/// Invokes fn(subset) for every nonempty proper subset of `s`, in dilated
/// counting order.
template <typename Fn>
void ForEachProperSubset(RelSet s, Fn&& fn) {
  const std::uint64_t sw = s.word();
  for (std::uint64_t sub = SubsetSucc(sw, 0); sub != sw;
       sub = SubsetSucc(sw, sub)) {
    fn(RelSet::FromWord(sub));
  }
}

/// Footnote 3 of the paper: the subsets of `s` may be visited in alternative
/// orders by stepping delta(i) -> delta(i + k) for any odd stride k, which
/// still cycles through all 2^m values before repeating. Calls fn(lhs, rhs)
/// for each proper split, visiting in stride-k order. `stride` must be odd.
template <typename Fn>
void ForEachProperSplitStrided(RelSet s, std::uint64_t stride, Fn&& fn) {
  const std::uint64_t sw = s.word();
  const std::uint64_t m = static_cast<std::uint64_t>(s.size());
  const std::uint64_t period = std::uint64_t{1} << m;
  std::uint64_t i = stride % period;
  for (std::uint64_t step = 1; step < period; ++step) {
    if (i != 0) {  // skip the empty subset; Dilate(s, period-1 wrap) == s
      const std::uint64_t lhs = Dilate(sw, i);
      if (lhs != sw) fn(RelSet::FromWord(lhs), RelSet::FromWord(sw ^ lhs));
    }
    i = (i + stride) % period;
  }
}

}  // namespace blitz

#endif  // BLITZ_CORE_SUBSET_ENUM_H_
