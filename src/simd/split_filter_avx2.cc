// Compiled with -mavx2 when the toolchain supports it (see
// src/simd/CMakeLists.txt); the kernels are only ever invoked after the
// runtime dispatcher has confirmed the CPU reports AVX2, so emitting VEX
// instructions in this one TU is safe even on a baseline build.

#include "simd/split_filter.h"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace blitz {

#if defined(__AVX2__)

bool SplitFilterAvx2Compiled() { return true; }

void SplitBuildDenseAvx2(const float* cost, std::uint64_t s, int k,
                         std::uint32_t* idx, float* dc) {
  // Doubling construction of the rank -> subset map (see the portable
  // kernel for the invariant). The first three levels are scalar; from
  // m = 8 on, each level is a contiguous 8-lane load/or/store sweep.
  idx[0] = 0;
  std::uint32_t m = 1;
  std::uint64_t bits = s;
  while (bits != 0 && m < 8) {
    const std::uint32_t bit = static_cast<std::uint32_t>(bits & (~bits + 1));
    bits &= bits - 1;
    for (std::uint32_t r = 0; r < m; ++r) idx[m + r] = idx[r] | bit;
    m <<= 1;
  }
  while (bits != 0) {
    const std::uint32_t bit = static_cast<std::uint32_t>(bits & (~bits + 1));
    bits &= bits - 1;
    const __m256i vbit = _mm256_set1_epi32(static_cast<int>(bit));
    for (std::uint32_t r = 0; r < m; r += 8) {
      const __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(idx + r));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(idx + m + r),
                          _mm256_or_si256(v, vbit));
    }
    m <<= 1;
  }
  // Compact the cost column into dense rank order: one hardware-gather
  // pass, the only scattered reads of the batched path. Prefetch the
  // gather targets a few groups ahead (one line hint per group).
  const std::uint32_t total = m;  // == 2^k
  std::uint32_t r = 0;
  for (; r + 8 <= total; r += 8) {
    if (r + 64 < total) _mm_prefetch(
        reinterpret_cast<const char*>(cost + idx[r + 64]), _MM_HINT_T1);
    const __m256i vi = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(idx + r));
    _mm256_storeu_ps(dc + r, _mm256_i32gather_ps(cost, vi, 4));
  }
  for (; r < total; ++r) dc[r] = cost[idx[r]];
  (void)k;
}

std::uint64_t SplitFilterDenseAvx2(const float* dc, std::uint32_t full_rank,
                                   std::uint32_t r0, int count, float best) {
  // Next block's forward stream and descending rhs stream (the reversed
  // half of dc); the descending one defeats hardware prefetchers.
  if (r0 + static_cast<std::uint32_t>(kSplitFilterBlock) <= full_rank) {
    _mm_prefetch(reinterpret_cast<const char*>(dc + r0 + kSplitFilterBlock),
                 _MM_HINT_T0);
    _mm_prefetch(
        reinterpret_cast<const char*>(
            dc + (full_rank - r0 - kSplitFilterBlock)),
        _MM_HINT_T0);
  }
  const __m256 vbest = _mm256_set1_ps(best);
  const __m256i vrev = _mm256_setr_epi32(7, 6, 5, 4, 3, 2, 1, 0);
  std::uint64_t mask = 0;
  int i = 0;
  for (; i + 8 <= count; i += 8) {
    const std::uint32_t r = r0 + static_cast<std::uint32_t>(i);
    // Lanes j = 0..7 need dc[full_rank - (r + j)]: one contiguous load at
    // full_rank - r - 7 (in bounds: every lane's complement is a proper
    // rank in [1, full_rank - 1]), then a lane reversal.
    const __m256 fwd = _mm256_loadu_ps(dc + r);
    const __m256 rev_raw = _mm256_loadu_ps(dc + (full_rank - r - 7));
    const __m256 rev = _mm256_permutevar8x32_ps(rev_raw, vrev);
    const __m256 sum = _mm256_add_ps(fwd, rev);
    // Ordered compare: NaN lanes never survive, matching the scalar
    // !(x < y) idiom.
    const __m256 lt = _mm256_cmp_ps(sum, vbest, _CMP_LT_OQ);
    mask |= static_cast<std::uint64_t>(
                static_cast<std::uint32_t>(_mm256_movemask_ps(lt)))
            << i;
  }
  for (; i < count; ++i) {
    const std::uint32_t r = r0 + static_cast<std::uint32_t>(i);
    mask |= static_cast<std::uint64_t>(dc[r] + dc[full_rank - r] < best)
            << i;
  }
  return mask;
}

#else  // !defined(__AVX2__)

bool SplitFilterAvx2Compiled() { return false; }

void SplitBuildDenseAvx2(const float* cost, std::uint64_t s, int k,
                         std::uint32_t* idx, float* dc) {
  SplitBuildDensePortable(cost, s, k, idx, dc);
}

std::uint64_t SplitFilterDenseAvx2(const float* dc, std::uint32_t full_rank,
                                   std::uint32_t r0, int count, float best) {
  return SplitFilterDensePortable(dc, full_rank, r0, count, best);
}

#endif  // defined(__AVX2__)

}  // namespace blitz
