#ifndef BLITZ_SERVE_MUX_H_
#define BLITZ_SERVE_MUX_H_

#include "common/status.h"
#include "serve/server.h"

namespace blitz {

/// Configuration for ServeMultiplexed.
struct MuxOptions {
  /// Listening socket (unix or TCP). Set nonblocking by the multiplexer;
  /// still owned by the caller.
  int listen_fd = -1;

  /// Optional wake descriptor (the blitzd SIGTERM self-pipe): when it
  /// becomes readable the multiplexer stops accepting, drains the server,
  /// flushes every pending response, closes all connections, and returns.
  int wake_fd = -1;

  /// A connection whose peer accepts no bytes for this long while
  /// responses are pending is closed (the slow-loris bound — same
  /// semantics as FdStream's bounded write path). 0 disables.
  double write_timeout_ms = 5000;

  /// Open-connection cap; accepts beyond it are closed immediately.
  /// 0 = unbounded (the process fd limit is the backstop).
  int max_connections = 0;

  Status Validate() const;
};

/// Runs an epoll-based connection multiplexer over `server`'s frame-level
/// API: one event-loop thread owns every socket — nonblocking accept,
/// per-connection incremental frame reassembly (RequestFrameAssembler),
/// and write backpressure via a per-connection outbox with EPOLLOUT
/// arming — so concurrency is bounded by file descriptors, not reader
/// threads. This is what pushes blitzd past the thread-per-connection
/// ceiling to 10k sockets.
///
/// Per connection, the blocking Serve(stream) semantics are preserved
/// exactly: a malformed or over-limit frame is answered once with id 0 and
/// ends the connection after pending responses flush; EOF mid-frame is a
/// protocol error, EOF at a frame boundary is clean; every submitted
/// request is answered exactly once (the server's drain guarantee — the
/// multiplexer only transports frames).
///
/// Blocks until drained (wake_fd readable, or a kFailStatus
/// serve.epoll.wait fault — transient kinds skip one cycle). Returns OK on
/// a clean wake-initiated drain, the armed status on a fault-initiated
/// one, or an I/O error if the event loop itself failed.
Status ServeMultiplexed(BlitzServer* server, const MuxOptions& options);

}  // namespace blitz

#endif  // BLITZ_SERVE_MUX_H_
