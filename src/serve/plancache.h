#ifndef BLITZ_SERVE_PLANCACHE_H_
#define BLITZ_SERVE_PLANCACHE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "api/optimize_query.h"
#include "catalog/catalog.h"
#include "common/status.h"
#include "query/join_graph.h"

namespace blitz {

/// The serving tier's plan cache (ROADMAP item 1): a bounded, sharded LRU
/// map from a *canonicalized query fingerprint* to the OptimizedQuery the
/// optimizer produced for it. Repeat traffic — the common case DPconv
/// identifies as the serving bottleneck — skips the O(3^n) DP entirely.
///
/// ## Fingerprint semantics
///
/// Two requests share a fingerprint iff they are the *same optimization
/// problem*: identical multisets of base-relation statistics (cardinality,
/// tuple width), identical join graphs up to a relabeling of the relations,
/// and identical plan-affecting options (cost model, estimator kind,
/// threshold ladder start, exhaustive limit, hybrid knobs, algorithm
/// attachment). Relation *names* and the textual order of edges are
/// deliberately excluded — `a JOIN b` and `b JOIN a` with swapped indices
/// are one problem. The per-request deadline is also excluded: a cached
/// answer is at least as good as what a shorter deadline would produce, and
/// results that *were* degraded by a budget are never inserted, so a hit
/// never hands anyone a downgraded plan.
///
/// Canonicalization runs Weisfeiler-Leman color refinement seeded by the
/// per-relation statistics, then a budgeted individualization-refinement
/// search over the remaining symmetric classes, keeping the
/// lexicographically minimal graph encoding. The full canonical encoding
/// string *is* the key (exact equality — hash collisions cannot produce a
/// wrong hit). If the symmetry search exhausts its node budget the
/// fingerprint falls back to a deterministic but not relabeling-invariant
/// ordering and is marked `exact_canonical = false`: a safe miss for
/// isomorphs, never a wrong hit, and still a hit for byte-identical
/// requests.
///
/// ## Label spaces
///
/// Entries are stored in *canonical* label space. Insert relabels the
/// result's plan through the inserting request's `to_canonical`
/// permutation; a hit relabels back through the inverse of the *requester's*
/// permutation. For a same-labeled repeat (the identity permutation, and
/// the only case the differential wall asserts bit-identity on) this round
/// trip is exact: identical plan structure, costs, counters, and tie-breaks.
///
/// ## Concurrency
///
/// The cache is sharded by fingerprint hash; each shard has one mutex.
/// GetOrCompute is single-flight per key: the first miss computes (outside
/// any lock), concurrent identical requests wait on the shard's condition
/// variable and are answered from the leader's insert — or compute
/// themselves if the leader's result turned out uncacheable.

/// A canonicalized query fingerprint (see the file comment).
struct PlanFingerprint {
  /// The full canonical encoding: relations, edges, and plan-affecting
  /// options. Key equality is exact string equality on this.
  std::string canonical;

  /// 64-bit FNV-1a of `canonical` (shard selector, never trusted alone).
  std::uint64_t hash = 0;

  /// to_canonical[i] = canonical label of original relation i.
  std::vector<int> to_canonical;

  /// False when the symmetry search exhausted its budget and fell back to
  /// a deterministic non-invariant ordering (safe miss for isomorphs).
  bool exact_canonical = true;
};

/// Computes the fingerprint of (catalog, graph, options). Deterministic;
/// invariant under relation relabeling and edge reordering whenever
/// `exact_canonical` comes back true. `search_budget` bounds the
/// individualization-refinement node count (0 = library default).
PlanFingerprint ComputePlanFingerprint(const Catalog& catalog,
                                       const JoinGraph& graph,
                                       const QueryOptimizerOptions& options,
                                       int search_budget = 0);

/// Deep-copies an OptimizedQuery with `plan` relabeled: every leaf's
/// relation index i becomes `relabel[i]` (identity when `relabel` is
/// empty). Algorithm and sort-class decorations are carried verbatim.
OptimizedQuery RelabelOptimizedQuery(const OptimizedQuery& result,
                                     const std::vector<int>& relabel);

class PlanCache {
 public:
  struct Options {
    /// Entry-count bound across all shards (0 disables caching: every
    /// lookup misses, every insert bypasses).
    std::size_t max_entries = 4096;

    /// Approximate byte bound across all shards (key + plan tree + report;
    /// 0 = unbounded by bytes).
    std::size_t max_bytes = 64ull << 20;

    /// Shard count (clamped to >= 1; a power of two keeps the modulo
    /// cheap but is not required).
    int shards = 8;
  };

  /// Monotonic counters plus current occupancy, aggregated over shards.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
    std::uint64_t evictions = 0;
    /// Results not inserted: not OK, degraded, fault-injected
    /// (serve.cache.insert), or the cache is disabled.
    std::uint64_t bypasses = 0;
    /// Requests that waited on another in-flight identical computation
    /// instead of duplicating the DP work.
    std::uint64_t coalesced = 0;
    std::size_t entries = 0;
    std::size_t bytes = 0;
  };

  explicit PlanCache(const Options& options);

  /// On hit: a copy of the stored result relabeled into the requester's
  /// label space, with `from_cache = true` (original tier preserved).
  std::optional<OptimizedQuery> Lookup(const PlanFingerprint& fp);

  /// Inserts `result` (relabeled into canonical space) unless the insert
  /// policy bypasses it: only OK, degradation-free results are cached, and
  /// an armed serve.cache.insert fault suppresses the insert. Evicts LRU
  /// entries while over either bound.
  void Insert(const PlanFingerprint& fp, const OptimizedQuery& result);

  /// Single-flight lookup-or-compute. `compute` runs outside every cache
  /// lock; concurrent callers with the same fingerprint coalesce onto one
  /// computation. `cancelled` (optional) lets a waiter give up — it then
  /// returns kCancelled without computing.
  Result<OptimizedQuery> GetOrCompute(
      const PlanFingerprint& fp,
      const std::function<Result<OptimizedQuery>()>& compute,
      const std::function<bool()>& cancelled = nullptr);

  Stats GetStats() const;

  /// True when max_entries is 0 — the cache is a no-op.
  bool disabled() const { return options_.max_entries == 0; }

 private:
  struct Entry {
    OptimizedQuery result;  ///< Canonical label space.
    std::size_t bytes = 0;
    std::list<std::string>::iterator lru;  ///< Position in Shard::lru.
  };

  struct Shard {
    mutable std::mutex mu;
    std::condition_variable cv;  ///< Signaled when an inflight key settles.
    std::unordered_map<std::string, Entry> entries;
    std::list<std::string> lru;  ///< Front = most recent.
    std::unordered_set<std::string> inflight;
    std::size_t bytes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
    std::uint64_t evictions = 0;
    std::uint64_t bypasses = 0;
    std::uint64_t coalesced = 0;
  };

  Shard& ShardFor(const PlanFingerprint& fp) {
    return shards_[fp.hash % shards_.size()];
  }

  /// Lookup under `shard.mu` (caller holds it). Touches LRU on hit;
  /// `count_miss` false makes a miss invisible in the stats (used by
  /// GetOrCompute's waiter re-checks, which are not new requests).
  std::optional<OptimizedQuery> LookupLocked(Shard& shard,
                                             const PlanFingerprint& fp,
                                             bool count_miss = true);

  /// Insert-or-bypass under `shard.mu` (caller holds it).
  void InsertLocked(Shard& shard, const PlanFingerprint& fp,
                    const OptimizedQuery& result);

  const Options options_;
  std::vector<Shard> shards_;
};

}  // namespace blitz

#endif  // BLITZ_SERVE_PLANCACHE_H_
