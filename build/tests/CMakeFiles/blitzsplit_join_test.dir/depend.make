# Empty dependencies file for blitzsplit_join_test.
# This may be replaced when dependencies are built.
