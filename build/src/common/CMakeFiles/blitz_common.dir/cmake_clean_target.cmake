file(REMOVE_RECURSE
  "libblitz_common.a"
)
