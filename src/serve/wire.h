#ifndef BLITZ_SERVE_WIRE_H_
#define BLITZ_SERVE_WIRE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "serve/stream.h"

namespace blitz {

/// The blitzd wire protocol ("blitz-serve-v1"): length-framed .bjq requests
/// and status-coded responses over any ByteStream. Each frame is one ASCII
/// header line followed by exactly `body_bytes` bytes of payload, so a
/// reader never scans untrusted bytes for a delimiter beyond the (bounded)
/// header:
///
///   request:   blitzq1 <tenant> <id> <body_bytes> [deadline_ms=<ms>]\n
///              <body: a .bjq document>
///   response:  blitzr1 <id> <StatusCodeName> <body_bytes>
///                  [retry_after_ms=<ms>]\n
///              <body: reply lines on OK, the error message otherwise>
///
/// `id` is a client-chosen request identifier echoed in the response;
/// responses may arrive out of request order (workers finish when they
/// finish), so pipelining clients match on it. `tenant` names the admission
/// bucket ([A-Za-z0-9_.-]). retry_after_ms rides on shed responses
/// (kResourceExhausted / kUnavailable) as the server's backoff hint.
///
/// An OK response body is line-oriented:
///
///   plan <paper-notation plan string>
///   cost <double>
///   tier <exhaustive|hybrid|greedy>
///   passes <int>
///   degradations <int>
///   estimator <paper|hist|noest>
///
/// `estimator` names the cardinality estimator the plan was optimized
/// under (card/estimator.h). Readers treat it as optional — replies from
/// servers predating the field simply omit it — which is the protocol's
/// forward-extensibility rule at work: unknown keys are ignored, absent
/// optional keys default.
///
/// A reply answered from the server's plan cache additionally carries
///
///   cached 1
///
/// with `tier` still naming the tier that *originally* produced the plan —
/// cache hits preserve provenance rather than inventing a new tier. The
/// line is omitted (not "cached 0") on fresh answers, so old readers are
/// unaffected.
///
/// Introspection: a request whose body is exactly `/statz` (kStatzBody) is
/// answered inline — no admission, no queueing, works while draining —
/// with an OK frame whose body is the forward-extensible statz text: a
/// `blitz-statz-v1` magic line followed by one `<key> <value>` pair per
/// line (admission, queue, worker, cache, and latency counters; see
/// BlitzServer::StatzBody). Readers ignore unknown keys.
///
/// Malformed or over-limit headers are a *connection*-level failure
/// (kInvalidArgument / kResourceExhausted from ReadRequestFrame): the
/// stream can no longer be trusted to be frame-aligned, so the server
/// answers once with id 0 and closes. Body-level problems (bad .bjq) are
/// request-level and answered normally.

/// True iff `tenant` fits the wire charset: 1-64 chars of [A-Za-z0-9_.-].
/// Tenant names travel unquoted in the space-delimited request header, so
/// anything outside this set (a space, a newline) would desync the framing;
/// both the server's parser and the client's Send validate against it.
bool IsValidTenantName(std::string_view tenant);

/// Size caps a frame reader enforces before trusting any length field.
struct WireLimits {
  std::uint64_t max_body_bytes = 1ull << 20;
  std::size_t max_header_bytes = 1024;
};

/// The body of the introspection request answered by BlitzServer with its
/// statz counters (see the protocol comment above).
inline constexpr std::string_view kStatzBody = "/statz";

/// Magic first line of a statz reply body.
inline constexpr std::string_view kStatzMagic = "blitz-statz-v1";

struct RequestFrame {
  std::string tenant = "default";
  std::uint64_t id = 0;
  double deadline_ms = 0;  ///< 0 = no per-request deadline.
  std::string body;
};

struct ResponseFrame {
  std::uint64_t id = 0;
  StatusCode code = StatusCode::kOk;
  double retry_after_ms = 0;  ///< > 0 only on shed responses.
  std::string body;
};

std::string EncodeRequestFrame(const RequestFrame& frame);
std::string EncodeResponseFrame(const ResponseFrame& frame);

/// Parses one request header line (everything before the '\n', magic
/// included) into the frame's header fields plus the body byte count the
/// sender declared. Shared by the blocking FrameReader and the epoll
/// multiplexer's incremental assembler so both enforce identical framing.
Result<RequestFrame> ParseRequestHeader(std::string_view line,
                                        std::uint64_t* body_bytes);

/// Response-side counterpart of ParseRequestHeader.
Result<ResponseFrame> ParseResponseHeader(std::string_view line,
                                          std::uint64_t* body_bytes);

/// Incremental frame reassembly for nonblocking transports: bytes go in as
/// they arrive off the wire, complete frames come out. The state machine
/// has two states — accumulating a header line (bounded by
/// max_header_bytes) and accumulating a body (bounded by max_body_bytes,
/// checked before a single body byte is buffered) — and enforces exactly
/// the limits and error conditions of the blocking FrameReader: any error
/// means the stream is no longer frame-aligned and the connection must
/// end after one id-0 response.
///
/// `Header` is the per-frame header type (RequestFrame or ResponseFrame).
template <typename Header>
class FrameAssembler {
 public:
  explicit FrameAssembler(const WireLimits& limits) : limits_(limits) {}

  /// Appends raw bytes and appends every frame they complete to `frames`
  /// (possibly none, possibly several). A non-OK status poisons the
  /// assembler: further Feed calls return the same error.
  Status Feed(std::string_view bytes, std::vector<Header>* frames);

  /// True while a partially received frame is buffered — EOF here means
  /// the peer died mid-frame, not at a frame boundary.
  bool mid_frame() const { return !buffer_.empty() || in_body_; }

 private:
  const WireLimits limits_;
  std::string buffer_;     ///< Header bytes (kHeader) or body bytes (kBody).
  Header pending_{};       ///< Parsed header awaiting its body.
  std::uint64_t body_bytes_ = 0;
  bool in_body_ = false;
  Status error_ = Status::OK();
};

using RequestFrameAssembler = FrameAssembler<RequestFrame>;
using ResponseFrameAssembler = FrameAssembler<ResponseFrame>;

/// Buffered frame reader over a ByteStream (one per connection side).
class FrameReader {
 public:
  FrameReader(ByteStream* stream, const WireLimits& limits)
      : stream_(stream), limits_(limits) {}

  /// Next request frame; nullopt on clean end-of-stream at a frame
  /// boundary. Errors mean the stream is no longer frame-aligned.
  Result<std::optional<RequestFrame>> ReadRequest();

  /// Next response frame; nullopt on clean end-of-stream.
  Result<std::optional<ResponseFrame>> ReadResponse();

 private:
  /// Reads through the next '\n' (nullopt on EOF before any byte;
  /// kInvalidArgument past max_header_bytes without one).
  Result<std::optional<std::string>> ReadHeaderLine();
  Status ReadBody(std::uint64_t body_bytes, std::string* out);

  ByteStream* stream_;
  WireLimits limits_;
  std::string buffer_;  ///< Bytes read past the last consumed frame.
};

/// The parsed payload of an OK response body.
struct ServeReply {
  std::string plan;
  double cost = 0;
  std::string tier;
  int passes = 1;
  int degradations = 0;
  /// Estimator the plan was optimized under; empty when the server did not
  /// send the (optional) line.
  std::string estimator;

  /// True when the plan was answered from the server's plan cache. `tier`
  /// still names the tier that originally produced the stored plan.
  bool cached = false;
};

/// Formats/parses the OK response body (see the line format above).
std::string EncodeReplyBody(const ServeReply& reply);
Result<ServeReply> ParseReplyBody(std::string_view body);

}  // namespace blitz

#endif  // BLITZ_SERVE_WIRE_H_
