#include "baseline/dpccp.h"

#include <bit>
#include <functional>
#include <limits>
#include <vector>

#include "common/check.h"

namespace blitz {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// DPccp state: the memo plus the graph walked as bit-masks.
struct Search {
  const JoinGraph* graph;
  CostModelKind cost_model;
  int n;
  std::vector<double> cards;
  std::vector<double> cost;
  std::vector<std::uint64_t> best_lhs;
  std::uint64_t ccp_pairs = 0;

  std::uint64_t Neighborhood(std::uint64_t s) const {
    std::uint64_t out = 0;
    std::uint64_t w = s;
    while (w != 0) {
      out |= graph->Neighbors(std::countr_zero(w)).word();
      w &= w - 1;
    }
    return out & ~s;
  }

  /// B_i = {0, ..., i}.
  static std::uint64_t Bset(int i) {
    return (std::uint64_t{1} << (i + 1)) - 1;
  }

  void EmitPair(std::uint64_t s1, std::uint64_t s2) {
    ++ccp_pairs;
    const std::uint64_t s = s1 | s2;
    // Both operand entries are final here (DPccp emits pairs in an order
    // compatible with bottom-up DP); cost both orientations.
    BLITZ_DCHECK(cost[s1] < kInf && cost[s2] < kInf);
    const double base = cost[s1] + cost[s2];
    const double forward =
        base + EvalJoinCost(cost_model, cards[s], cards[s1], cards[s2]);
    if (forward < cost[s]) {
      cost[s] = forward;
      best_lhs[s] = s1;
    }
    const double backward =
        base + EvalJoinCost(cost_model, cards[s], cards[s2], cards[s1]);
    if (backward < cost[s]) {
      cost[s] = backward;
      best_lhs[s] = s2;
    }
  }

  void EnumerateCmpRec(std::uint64_t s1, std::uint64_t s2, std::uint64_t x) {
    const std::uint64_t neighborhood = Neighborhood(s2) & ~x;
    if (neighborhood == 0) return;
    // Emit S2 grown by every nonempty subset of the neighborhood, then
    // recurse on each growth with the neighborhood excluded.
    for (std::uint64_t sub = neighborhood & (~neighborhood + 1);;
         sub = neighborhood & (sub - neighborhood)) {
      EmitPair(s1, s2 | sub);
      if (sub == neighborhood) break;
    }
    for (std::uint64_t sub = neighborhood & (~neighborhood + 1);;
         sub = neighborhood & (sub - neighborhood)) {
      EnumerateCmpRec(s1, s2 | sub, x | neighborhood);
      if (sub == neighborhood) break;
    }
  }

  /// Emits every connected complement for the connected subgraph s1.
  void EmitCsg(std::uint64_t s1) {
    const int min_s1 = std::countr_zero(s1);
    const std::uint64_t x = Bset(min_s1) | s1;
    const std::uint64_t neighborhood = Neighborhood(s1) & ~x;
    // Descending start nodes, as in the published algorithm.
    std::uint64_t w = neighborhood;
    while (w != 0) {
      const int i = 63 - std::countl_zero(w);
      w &= ~(std::uint64_t{1} << i);
      const std::uint64_t s2 = std::uint64_t{1} << i;
      EmitPair(s1, s2);
      EnumerateCmpRec(s1, s2, x | (Bset(i) & neighborhood));
    }
  }

  void EnumerateCsgRec(std::uint64_t s1, std::uint64_t x) {
    const std::uint64_t neighborhood = Neighborhood(s1) & ~x;
    if (neighborhood == 0) return;
    for (std::uint64_t sub = neighborhood & (~neighborhood + 1);;
         sub = neighborhood & (sub - neighborhood)) {
      EmitCsg(s1 | sub);
      if (sub == neighborhood) break;
    }
    for (std::uint64_t sub = neighborhood & (~neighborhood + 1);;
         sub = neighborhood & (sub - neighborhood)) {
      EnumerateCsgRec(s1 | sub, x | neighborhood);
      if (sub == neighborhood) break;
    }
  }

  void Run() {
    for (int i = n - 1; i >= 0; --i) {
      const std::uint64_t s1 = std::uint64_t{1} << i;
      EmitCsg(s1);
      EnumerateCsgRec(s1, Bset(i));
    }
  }
};

}  // namespace

Result<DpCcpResult> OptimizeDpCcp(const Catalog& catalog,
                                  const JoinGraph& graph,
                                  CostModelKind cost_model) {
  const int n = catalog.num_relations();
  if (graph.num_relations() != n) {
    return Status::InvalidArgument("catalog/graph relation-count mismatch");
  }
  if (!graph.IsConnected(RelSet::FirstN(n))) {
    return Status::FailedPrecondition(
        "join graph is disconnected: no product-free plan exists");
  }
  const std::uint64_t table_size = std::uint64_t{1} << n;

  Search search;
  search.graph = &graph;
  search.cost_model = cost_model;
  search.n = n;
  std::vector<double> base_cards(n);
  for (int i = 0; i < n; ++i) base_cards[i] = catalog.cardinality(i);
  ComputeAllCardinalities(graph, base_cards, &search.cards);
  search.cost.assign(table_size, kInf);
  search.best_lhs.assign(table_size, 0);
  for (int i = 0; i < n; ++i) {
    search.cost[std::uint64_t{1} << i] = 0.0;
  }
  search.Run();

  const std::uint64_t full = table_size - 1;
  if (!(search.cost[full] < kInf)) {
    return Status::Internal("DPccp failed to cover the full relation set");
  }

  std::function<Plan(std::uint64_t)> extract = [&](std::uint64_t s) {
    if ((s & (s - 1)) == 0) return Plan::Leaf(std::countr_zero(s));
    const std::uint64_t lhs = search.best_lhs[s];
    return Plan::Join(extract(lhs), extract(s ^ lhs));
  };
  DpCcpResult result;
  result.plan = extract(full);
  result.cost = search.cost[full];
  result.ccp_pairs = search.ccp_pairs;
  return result;
}

}  // namespace blitz
