#include "common/status.h"

#include <gtest/gtest.h>

namespace blitz {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad n");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad n");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad n");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
}

TEST(StatusTest, GovernorCodesRenderDistinctly) {
  EXPECT_EQ(Status::DeadlineExceeded("50 ms elapsed").ToString(),
            "DeadlineExceeded: 50 ms elapsed");
  EXPECT_EQ(Status::Cancelled("caller gave up").ToString(),
            "Cancelled: caller gave up");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

namespace status_macro {

Status Fails() { return Status::Internal("boom"); }
Status Succeeds() { return Status::OK(); }

Status Propagates() {
  BLITZ_RETURN_IF_ERROR(Succeeds());
  BLITZ_RETURN_IF_ERROR(Fails());
  return Status::InvalidArgument("never reached");
}

}  // namespace status_macro

TEST(StatusTest, ReturnIfErrorMacro) {
  const Status s = status_macro::Propagates();
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(s.message(), "boom");
}

TEST(StatusTest, UnavailableFactory) {
  const Status s = Status::Unavailable("server is draining");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(s.message(), "server is draining");
}

TEST(StatusTest, StatusCodeNamesRoundTripThroughStrings) {
  // The wire protocol (serve/wire.h) ships codes by name; every enumerator
  // must survive the round trip.
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument,
        StatusCode::kOutOfRange, StatusCode::kNotFound,
        StatusCode::kFailedPrecondition, StatusCode::kResourceExhausted,
        StatusCode::kInternal, StatusCode::kDeadlineExceeded,
        StatusCode::kCancelled, StatusCode::kUnavailable}) {
    const std::string_view name = StatusCodeToString(code);
    std::optional<StatusCode> parsed = StatusCodeFromString(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, code) << name;
  }
}

TEST(StatusTest, UnknownStatusCodeNameIsRejected) {
  EXPECT_FALSE(StatusCodeFromString("NOT_A_CODE").has_value());
  EXPECT_FALSE(StatusCodeFromString("").has_value());
  EXPECT_FALSE(StatusCodeFromString("ok").has_value());  // Case-sensitive.
}

}  // namespace
}  // namespace blitz
