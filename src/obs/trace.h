#ifndef BLITZ_OBS_TRACE_H_
#define BLITZ_OBS_TRACE_H_

#include <chrono>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace blitz {

/// One completed span, timed in microseconds relative to the recorder's
/// creation. `depth` is the nesting level at entry within `thread_id`
/// (dense 0-based ids in first-span order).
struct TraceEvent {
  std::string name;
  std::string category;
  double start_us = 0;
  double duration_us = 0;
  int thread_id = 0;
  int depth = 0;
  std::vector<std::pair<std::string, double>> args;
};

/// Thread-safe sink for completed spans. Export either as human-readable
/// indented text or as Chrome trace-viewer JSON (the `traceEvents` array of
/// complete "ph":"X" events, loadable in chrome://tracing and Perfetto).
class TraceRecorder {
 public:
  TraceRecorder() : origin_(std::chrono::steady_clock::now()) {}

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void Record(TraceEvent event);

  /// Microseconds elapsed since this recorder was constructed.
  double NowMicros() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - origin_)
        .count();
  }

  std::size_t num_events() const;

  /// Copy of the recorded events, sorted by (thread, start time, depth) —
  /// i.e. parents before their children.
  std::vector<TraceEvent> Events() const;

  /// {"traceEvents":[...],"displayTimeUnit":"ms"} — valid JSON.
  std::string ToChromeTraceJson() const;

  /// Indented per-thread span tree with millisecond durations.
  std::string ToText() const;

 private:
  const std::chrono::steady_clock::time_point origin_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// Process-global recorder hook, mirroring GlobalMetrics(): spans created
/// without an explicit recorder write here, and become near-zero-cost
/// no-ops (one atomic load, no clock read) while no recorder is installed.
/// Not owned; uninstall (nullptr) before destroying the recorder.
TraceRecorder* GlobalTraceRecorder();
void SetGlobalTraceRecorder(TraceRecorder* recorder);

/// RAII tracing span: captures the start time at construction and records
/// one TraceEvent into the recorder at destruction. Nesting is tracked per
/// thread, so spans created inside an active span become its children in
/// the exported tree. `name`/`category` must outlive the span (string
/// literals in practice).
class TraceSpan {
 public:
  /// Span against the global recorder (inactive when none is installed).
  explicit TraceSpan(const char* name, const char* category = "optimizer")
      : TraceSpan(GlobalTraceRecorder(), name, category) {}

  /// Span against an explicit recorder (nullptr = inactive).
  TraceSpan(TraceRecorder* recorder, const char* name,
            const char* category = "optimizer");

  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool active() const { return recorder_ != nullptr; }

  /// Attaches a numeric argument to the recorded event. No-op when
  /// inactive.
  void AddArg(const char* key, double value);

  /// Seconds since construction (0 when inactive). Usable before the span
  /// closes, e.g. to feed a latency histogram alongside the trace.
  double ElapsedSeconds() const;

 private:
  TraceRecorder* recorder_;
  const char* name_;
  const char* category_;
  double start_us_ = 0;
  int depth_ = 0;
  std::vector<std::pair<std::string, double>> args_;
};

}  // namespace blitz

#endif  // BLITZ_OBS_TRACE_H_
