#include "testing/differential.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <utility>

#include "common/strings.h"
#include "core/optimizer.h"
#include "plan/plan.h"
#include "testing/oracles.h"

namespace blitz::fuzz {
namespace {

/// Lowered from the production default so modest fuzz-sized problems
/// actually exercise the rank-parallel driver instead of silently running
/// sequentially.
constexpr std::uint64_t kFuzzMinParallelRank = 4;

OptimizerOptions MakeOptions(CostModelKind model, int threads,
                             SimdLevel simd) {
  OptimizerOptions options;
  options.cost_model = model;
  options.count_operations = true;
  options.simd = simd;
  options.parallel.num_threads = threads;
  options.parallel.min_parallel_rank = kFuzzMinParallelRank;
  return options;
}

std::string ConfigName(CostModelKind model, int threads, SimdLevel simd,
                       const char* extra = "") {
  return StrFormat("model=%s threads=%d simd=%s%s",
                   CostModelKindToString(model), threads, SimdLevelName(simd),
                   extra);
}

/// The counters that must fold/replay to identical totals across every
/// thread count and kernel level.
OracleVerdict CountersIdentical(const CountingInstrumentation& a,
                                const CountingInstrumentation& b) {
  if (a.subsets_visited != b.subsets_visited ||
      a.loop_iterations != b.loop_iterations ||
      a.improvements != b.improvements ||
      a.threshold_skips != b.threshold_skips) {
    return OracleVerdict::Fail(StrFormat(
        "operation counters diverge: [%s] vs [%s]", a.ToString().c_str(),
        b.ToString().c_str()));
  }
  return OracleVerdict::Pass();
}

}  // namespace

std::string CaseVerdict::ToString() const {
  if (passed) return "pass";
  return StrFormat("FAIL [%s] %s", config.c_str(), failure.c_str());
}

CaseVerdict RunDifferentialCase(const FuzzCase& c,
                                const DifferentialOptions& options) {
  CaseVerdict verdict;
  auto fail = [&](std::string config, std::string message) {
    verdict.passed = false;
    verdict.config = std::move(config);
    verdict.failure = std::move(message);
    return verdict;
  };

  const int n = c.catalog.num_relations();
  for (const CostModelKind model : options.cost_models) {
    // Reference configuration: sequential, scalar, unbounded.
    const OptimizerOptions ref_options =
        MakeOptions(model, /*threads=*/1, SimdLevel::kScalar);
    Result<OptimizeOutcome> reference =
        OptimizeJoin(c.catalog, c.graph, ref_options);
    if (!reference.ok()) {
      return fail(ConfigName(model, 1, SimdLevel::kScalar),
                  "reference run failed: " +
                      reference.status().ToString());
    }

    // Oracle 1: naive full-subset brute force, every table entry.
    Result<BruteForceTable> brute(BruteForceTable{});
    const bool have_brute = n <= options.brute_force_max_n;
    if (have_brute) {
      brute = BruteForceAllSubsets(c.catalog, c.graph, model,
                                   options.brute_force_max_n);
      if (!brute.ok()) {
        return fail(ConfigName(model, 1, SimdLevel::kScalar),
                    "brute-force oracle failed: " +
                        brute.status().ToString());
      }
      const OracleVerdict compared =
          CompareDpTableToBruteForce(reference->table, *brute);
      if (!compared.ok) {
        return fail(ConfigName(model, 1, SimdLevel::kScalar),
                    compared.message);
      }
    }

    // Oracles 2 and 3 need the winning plan.
    if (reference->found_plan()) {
      Result<Plan> plan = Plan::ExtractFromTable(reference->table);
      if (!plan.ok()) {
        return fail(ConfigName(model, 1, SimdLevel::kScalar),
                    "plan extraction failed: " + plan.status().ToString());
      }
      const OracleVerdict recosted = CheckPlanAgainstDpTable(
          *plan, c.catalog, c.graph, model, reference->table);
      if (!recosted.ok) {
        return fail(ConfigName(model, 1, SimdLevel::kScalar),
                    recosted.message);
      }
      const OracleVerdict dpccp = CheckAgainstDpCcp(
          c.catalog, c.graph, model,
          static_cast<double>(reference->cost),
          plan->CountCartesianProducts(c.graph));
      if (!dpccp.ok) {
        return fail(ConfigName(model, 1, SimdLevel::kScalar), dpccp.message);
      }
    }

    // The (threads x simd) grid: every combination must reproduce the
    // reference table bit for bit, with identical folded counters.
    for (const int threads : options.thread_counts) {
      for (const SimdLevel simd : options.simd_levels) {
        if (threads == 1 && simd == SimdLevel::kScalar) continue;
        Result<OptimizeOutcome> outcome =
            OptimizeJoin(c.catalog, c.graph, MakeOptions(model, threads,
                                                         simd));
        if (!outcome.ok()) {
          return fail(ConfigName(model, threads, simd),
                      "run failed: " + outcome.status().ToString());
        }
        const OracleVerdict tables =
            TablesBitIdentical(outcome->table, reference->table);
        if (!tables.ok) {
          return fail(ConfigName(model, threads, simd), tables.message);
        }
        const OracleVerdict counters =
            CountersIdentical(outcome->counters, reference->counters);
        if (!counters.ok) {
          return fail(ConfigName(model, threads, simd), counters.message);
        }
      }
    }

    if (!options.with_thresholds) continue;

    // Threshold ladder: must terminate on the bit-identical root cost.
    ThresholdLadderOptions ladder;
    ladder.initial_threshold = 10.0f;
    ladder.growth_factor = 100.0f;
    Result<LadderOutcome> laddered = OptimizeJoinWithThresholds(
        c.catalog, c.graph, ref_options, ladder);
    if (!laddered.ok()) {
      return fail(ConfigName(model, 1, SimdLevel::kScalar, " ladder"),
                  "threshold ladder failed: " + laddered.status().ToString());
    }
    const float ladder_cost = laddered->outcome.cost;
    const float ref_cost = reference->cost;
    if (std::memcmp(&ladder_cost, &ref_cost, sizeof(float)) != 0) {
      return fail(
          ConfigName(model, 1, SimdLevel::kScalar, " ladder"),
          StrFormat("ladder cost %.9g != reference cost %.9g after %d passes",
                    static_cast<double>(ladder_cost),
                    static_cast<double>(ref_cost), laddered->passes));
    }

    // One biting single-threshold pass, checked against the brute-force
    // oracle's rejection semantics (plans costing >= threshold rejected).
    if (have_brute && reference->found_plan() &&
        reference->cost < std::numeric_limits<float>::max() / 8) {
      OptimizerOptions bounded = ref_options;
      bounded.cost_threshold = std::max(reference->cost * 4.0f, 1.0f);
      Result<OptimizeOutcome> outcome =
          OptimizeJoin(c.catalog, c.graph, bounded);
      if (!outcome.ok()) {
        return fail(ConfigName(model, 1, SimdLevel::kScalar, " threshold"),
                    "thresholded run failed: " +
                        outcome.status().ToString());
      }
      const OracleVerdict compared = CompareDpTableToBruteForce(
          outcome->table, *brute, bounded.cost_threshold);
      if (!compared.ok) {
        return fail(ConfigName(model, 1, SimdLevel::kScalar, " threshold"),
                    compared.message);
      }
    }
  }
  return verdict;
}

}  // namespace blitz::fuzz
