
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/bruteforce.cc" "src/baseline/CMakeFiles/blitz_baseline.dir/bruteforce.cc.o" "gcc" "src/baseline/CMakeFiles/blitz_baseline.dir/bruteforce.cc.o.d"
  "/root/repo/src/baseline/dpccp.cc" "src/baseline/CMakeFiles/blitz_baseline.dir/dpccp.cc.o" "gcc" "src/baseline/CMakeFiles/blitz_baseline.dir/dpccp.cc.o.d"
  "/root/repo/src/baseline/dpsize.cc" "src/baseline/CMakeFiles/blitz_baseline.dir/dpsize.cc.o" "gcc" "src/baseline/CMakeFiles/blitz_baseline.dir/dpsize.cc.o.d"
  "/root/repo/src/baseline/dpsub.cc" "src/baseline/CMakeFiles/blitz_baseline.dir/dpsub.cc.o" "gcc" "src/baseline/CMakeFiles/blitz_baseline.dir/dpsub.cc.o.d"
  "/root/repo/src/baseline/greedy.cc" "src/baseline/CMakeFiles/blitz_baseline.dir/greedy.cc.o" "gcc" "src/baseline/CMakeFiles/blitz_baseline.dir/greedy.cc.o.d"
  "/root/repo/src/baseline/hybrid.cc" "src/baseline/CMakeFiles/blitz_baseline.dir/hybrid.cc.o" "gcc" "src/baseline/CMakeFiles/blitz_baseline.dir/hybrid.cc.o.d"
  "/root/repo/src/baseline/leftdeep.cc" "src/baseline/CMakeFiles/blitz_baseline.dir/leftdeep.cc.o" "gcc" "src/baseline/CMakeFiles/blitz_baseline.dir/leftdeep.cc.o.d"
  "/root/repo/src/baseline/local_search.cc" "src/baseline/CMakeFiles/blitz_baseline.dir/local_search.cc.o" "gcc" "src/baseline/CMakeFiles/blitz_baseline.dir/local_search.cc.o.d"
  "/root/repo/src/baseline/random_plans.cc" "src/baseline/CMakeFiles/blitz_baseline.dir/random_plans.cc.o" "gcc" "src/baseline/CMakeFiles/blitz_baseline.dir/random_plans.cc.o.d"
  "/root/repo/src/baseline/topdown.cc" "src/baseline/CMakeFiles/blitz_baseline.dir/topdown.cc.o" "gcc" "src/baseline/CMakeFiles/blitz_baseline.dir/topdown.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/blitz_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/blitz_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/blitz_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/blitz_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/blitz_query.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/blitz_plan.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
