// Compiled with -mavx512f when the toolchain supports it (see
// src/simd/CMakeLists.txt); only invoked after the runtime dispatcher has
// confirmed the CPU reports AVX-512F.

#include "simd/split_filter.h"

#if defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace blitz {

#if defined(__AVX512F__)

bool SplitFilterAvx512Compiled() { return true; }

void SplitBuildDenseAvx512(const float* cost, std::uint64_t s, int k,
                           std::uint32_t* idx, float* dc) {
  // Doubling construction of the rank -> subset map (see the portable
  // kernel for the invariant): scalar up to m = 16, then contiguous
  // 16-lane load/or/store sweeps per level.
  idx[0] = 0;
  std::uint32_t m = 1;
  std::uint64_t bits = s;
  while (bits != 0 && m < 16) {
    const std::uint32_t bit = static_cast<std::uint32_t>(bits & (~bits + 1));
    bits &= bits - 1;
    for (std::uint32_t r = 0; r < m; ++r) idx[m + r] = idx[r] | bit;
    m <<= 1;
  }
  while (bits != 0) {
    const std::uint32_t bit = static_cast<std::uint32_t>(bits & (~bits + 1));
    bits &= bits - 1;
    const __m512i vbit = _mm512_set1_epi32(static_cast<int>(bit));
    for (std::uint32_t r = 0; r < m; r += 16) {
      const __m512i v = _mm512_loadu_si512(idx + r);
      _mm512_storeu_si512(idx + m + r, _mm512_or_si512(v, vbit));
    }
    m <<= 1;
  }
  // Compact the cost column into dense rank order: one hardware-gather
  // pass with a line-granular prefetch hint a few groups ahead.
  const std::uint32_t total = m;  // == 2^k
  std::uint32_t r = 0;
  for (; r + 16 <= total; r += 16) {
    if (r + 64 < total) _mm_prefetch(
        reinterpret_cast<const char*>(cost + idx[r + 64]), _MM_HINT_T1);
    const __m512i vi = _mm512_loadu_si512(idx + r);
    _mm512_storeu_ps(dc + r, _mm512_i32gather_ps(vi, cost, 4));
  }
  for (; r < total; ++r) dc[r] = cost[idx[r]];
  (void)k;
}

std::uint64_t SplitFilterDenseAvx512(const float* dc,
                                     std::uint32_t full_rank,
                                     std::uint32_t r0, int count,
                                     float best) {
  if (r0 + static_cast<std::uint32_t>(kSplitFilterBlock) <= full_rank) {
    _mm_prefetch(reinterpret_cast<const char*>(dc + r0 + kSplitFilterBlock),
                 _MM_HINT_T0);
    _mm_prefetch(
        reinterpret_cast<const char*>(
            dc + (full_rank - r0 - kSplitFilterBlock)),
        _MM_HINT_T0);
  }
  const __m512 vbest = _mm512_set1_ps(best);
  const __m512i vrev = _mm512_setr_epi32(15, 14, 13, 12, 11, 10, 9, 8, 7, 6,
                                         5, 4, 3, 2, 1, 0);
  std::uint64_t mask = 0;
  int i = 0;
  for (; i + 16 <= count; i += 16) {
    const std::uint32_t r = r0 + static_cast<std::uint32_t>(i);
    // Lanes j = 0..15 need dc[full_rank - (r + j)]: one contiguous load
    // at full_rank - r - 15 (every lane's complement is a proper rank in
    // [1, full_rank - 1]), then a lane reversal.
    const __m512 fwd = _mm512_loadu_ps(dc + r);
    const __m512 rev_raw = _mm512_loadu_ps(dc + (full_rank - r - 15));
    const __m512 rev = _mm512_permutexvar_ps(vrev, rev_raw);
    const __mmask16 lt =
        _mm512_cmp_ps_mask(_mm512_add_ps(fwd, rev), vbest, _CMP_LT_OQ);
    mask |= static_cast<std::uint64_t>(lt) << i;
  }
  for (; i < count; ++i) {
    const std::uint32_t r = r0 + static_cast<std::uint32_t>(i);
    mask |= static_cast<std::uint64_t>(dc[r] + dc[full_rank - r] < best)
            << i;
  }
  return mask;
}

#else  // !defined(__AVX512F__)

bool SplitFilterAvx512Compiled() { return false; }

void SplitBuildDenseAvx512(const float* cost, std::uint64_t s, int k,
                           std::uint32_t* idx, float* dc) {
  SplitBuildDensePortable(cost, s, k, idx, dc);
}

std::uint64_t SplitFilterDenseAvx512(const float* dc,
                                     std::uint32_t full_rank,
                                     std::uint32_t r0, int count,
                                     float best) {
  return SplitFilterDensePortable(dc, full_rank, r0, count, best);
}

#endif  // defined(__AVX512F__)

}  // namespace blitz
