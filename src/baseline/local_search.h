#ifndef BLITZ_BASELINE_LOCAL_SEARCH_H_
#define BLITZ_BASELINE_LOCAL_SEARCH_H_

#include <cstdint>

#include "catalog/catalog.h"
#include "common/rng.h"
#include "common/status.h"
#include "cost/cost_model.h"
#include "plan/plan.h"
#include "query/join_graph.h"

namespace blitz {

/// Shared knobs for the stochastic plan-space searches (the transformation-
/// based techniques surveyed by Steinbrunn [Ste96] that Section 2 discusses).
struct LocalSearchOptions {
  std::uint64_t seed = 42;

  /// Hard budget on neighbor evaluations across the whole run.
  int max_moves = 20000;

  /// Iterative improvement: consecutive non-improving tries before the
  /// current descent is declared a local minimum (0 = derive from n).
  int max_failures = 0;

  /// Iterative improvement: number of random restarts.
  int restarts = 10;

  /// Simulated annealing: initial temperature as a fraction of the starting
  /// plan's cost.
  double initial_temperature_factor = 0.1;

  /// Simulated annealing: geometric cooling rate per stage.
  double cooling = 0.9;

  /// Simulated annealing: moves attempted per temperature stage.
  int moves_per_temperature = 200;
};

/// Result of a stochastic optimization run.
struct LocalSearchResult {
  Plan plan;
  double cost = 0;
  int moves_evaluated = 0;
};

/// The plan-tree transformation rules used as the neighborhood: join
/// commutativity, the two associativity rotations, and a leaf exchange.
/// Applies one uniformly random applicable move in place and returns true,
/// or returns false if no move is applicable (single-relation plans).
/// Exposed for tests; the optimizers below use it internally.
bool ApplyRandomMove(Plan* plan, Rng* rng);

/// Iterated improvement: repeated random-restart hill climbing over the
/// bushy plan space.
Result<LocalSearchResult> OptimizeIterativeImprovement(
    const Catalog& catalog, const JoinGraph& graph, CostModelKind cost_model,
    const LocalSearchOptions& options);

/// Simulated annealing with geometric cooling over the same neighborhood.
Result<LocalSearchResult> OptimizeSimulatedAnnealing(
    const Catalog& catalog, const JoinGraph& graph, CostModelKind cost_model,
    const LocalSearchOptions& options);

}  // namespace blitz

#endif  // BLITZ_BASELINE_LOCAL_SEARCH_H_
