#include "benchlib/bench_json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace blitz {

namespace {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (std::isnan(v)) return "\"nan\"";
  if (std::isinf(v)) return v > 0 ? "\"inf\"" : "\"-inf\"";
  if (v == static_cast<double>(static_cast<long long>(v)) && v > -1e15 &&
      v < 1e15) {
    return StrFormat("%lld", static_cast<long long>(v));
  }
  return StrFormat("%.17g", v);
}

/// Hand-rolled recursive-descent parser over the JSON subset the writer
/// above emits (plus whitespace tolerance) — keeps benchlib free of
/// third-party JSON dependencies. Parse errors surface as a single
/// InvalidArgument with a byte offset.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<BenchReport> ParseDocument() {
    BenchReport report;
    bool saw_schema = false;
    SkipWs();
    BLITZ_RETURN_IF_ERROR(Expect('{'));
    bool first = true;
    while (true) {
      SkipWs();
      if (Peek() == '}') {
        ++pos_;
        break;
      }
      if (!first) {
        BLITZ_RETURN_IF_ERROR(Expect(','));
        SkipWs();
      }
      first = false;
      Result<std::string> key = ParseString();
      if (!key.ok()) return key.status();
      SkipWs();
      BLITZ_RETURN_IF_ERROR(Expect(':'));
      SkipWs();
      if (*key == "schema") {
        Result<std::string> schema = ParseString();
        if (!schema.ok()) return schema.status();
        if (*schema != "blitz-bench-v1") {
          return Status::InvalidArgument(
              StrFormat("unsupported bench schema \"%s\"", schema->c_str()));
        }
        saw_schema = true;
      } else if (*key == "bench") {
        Result<std::string> bench = ParseString();
        if (!bench.ok()) return bench.status();
        report.bench = std::move(bench).value();
      } else if (*key == "meta") {
        BLITZ_RETURN_IF_ERROR(ParseMeta(&report));
      } else if (*key == "points") {
        BLITZ_RETURN_IF_ERROR(ParsePoints(&report));
      } else {
        BLITZ_RETURN_IF_ERROR(SkipValue());
      }
    }
    SkipWs();
    if (pos_ != text_.size()) return Error("trailing content");
    if (!saw_schema) {
      return Status::InvalidArgument("missing \"schema\":\"blitz-bench-v1\"");
    }
    return report;
  }

 private:
  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Status Error(const char* what) const {
    return Status::InvalidArgument(
        StrFormat("bench json: %s at offset %zu", what, pos_));
  }

  Status Expect(char c) {
    if (Peek() != c) {
      return Status::InvalidArgument(StrFormat(
          "bench json: expected '%c' at offset %zu", c, pos_));
    }
    ++pos_;
    return Status::OK();
  }

  Result<std::string> ParseString() {
    BLITZ_RETURN_IF_ERROR(Expect('"'));
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("bad \\u escape");
          const std::string hex(text_.substr(pos_, 4));
          out += static_cast<char>(std::strtol(hex.c_str(), nullptr, 16));
          pos_ += 4;
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Result<double> ParseNumber() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected number");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("malformed number");
    return value;
  }

  /// Numbers parse as themselves; quoted "inf"/"nan" sentinels (the
  /// JsonNumber fallbacks) and any other quoted scalar parse as 0.
  Result<double> ParseNumberOrQuoted() {
    if (Peek() == '"') {
      Result<std::string> quoted = ParseString();
      if (!quoted.ok()) return quoted.status();
      return 0.0;
    }
    return ParseNumber();
  }

  Status SkipValue() {
    SkipWs();
    const char c = Peek();
    if (c == '"') return ParseString().status();
    if (c == '{' || c == '[') {
      const char close = c == '{' ? '}' : ']';
      ++pos_;
      SkipWs();
      if (Peek() == close) {
        ++pos_;
        return Status::OK();
      }
      while (true) {
        if (c == '{') {
          BLITZ_RETURN_IF_ERROR(ParseString().status());
          SkipWs();
          BLITZ_RETURN_IF_ERROR(Expect(':'));
        }
        BLITZ_RETURN_IF_ERROR(SkipValue());
        SkipWs();
        if (Peek() == ',') {
          ++pos_;
          SkipWs();
          continue;
        }
        return Expect(close);
      }
    }
    if (c == 't') return Literal("true");
    if (c == 'f') return Literal("false");
    if (c == 'n') return Literal("null");
    return ParseNumber().status();
  }

  Status Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return Error("bad literal");
    pos_ += word.size();
    return Status::OK();
  }

  Status ParseMeta(BenchReport* report) {
    BLITZ_RETURN_IF_ERROR(Expect('{'));
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      SkipWs();
      Result<std::string> key = ParseString();
      if (!key.ok()) return key.status();
      SkipWs();
      BLITZ_RETURN_IF_ERROR(Expect(':'));
      SkipWs();
      Result<std::string> value = ParseString();
      if (!value.ok()) return value.status();
      report->meta.emplace_back(std::move(key).value(),
                                std::move(value).value());
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      return Expect('}');
    }
  }

  Status ParsePoints(BenchReport* report) {
    BLITZ_RETURN_IF_ERROR(Expect('['));
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      SkipWs();
      BLITZ_RETURN_IF_ERROR(Expect('{'));
      BenchPoint point;
      bool first = true;
      while (true) {
        SkipWs();
        if (Peek() == '}') {
          ++pos_;
          break;
        }
        if (!first) {
          BLITZ_RETURN_IF_ERROR(Expect(','));
          SkipWs();
        }
        first = false;
        Result<std::string> key = ParseString();
        if (!key.ok()) return key.status();
        SkipWs();
        BLITZ_RETURN_IF_ERROR(Expect(':'));
        SkipWs();
        if (*key == "key") {
          Result<std::string> k = ParseString();
          if (!k.ok()) return k.status();
          point.key = std::move(k).value();
        } else if (*key == "value") {
          Result<double> v = ParseNumberOrQuoted();
          if (!v.ok()) return v.status();
          point.value = *v;
        } else if (*key == "unit") {
          Result<std::string> u = ParseString();
          if (!u.ok()) return u.status();
          point.unit = std::move(u).value();
        } else {
          BLITZ_RETURN_IF_ERROR(SkipValue());
        }
      }
      if (point.key.empty()) return Error("point without key");
      report->points.push_back(std::move(point));
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      return Expect(']');
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const BenchPoint* BenchReport::Find(std::string_view key) const {
  for (const BenchPoint& point : points) {
    if (point.key == key) return &point;
  }
  return nullptr;
}

std::string_view BenchReport::MetaValue(std::string_view key) const {
  for (const auto& [k, v] : meta) {
    if (k == key) return v;
  }
  return {};
}

std::string BenchReport::ToJson() const {
  std::string out = StrFormat("{\"schema\":\"blitz-bench-v1\",\"bench\":\"%s\",\"meta\":{",
                              JsonEscape(bench).c_str());
  bool first = true;
  for (const auto& [key, value] : meta) {
    out += StrFormat("%s\"%s\":\"%s\"", first ? "" : ",",
                     JsonEscape(key).c_str(), JsonEscape(value).c_str());
    first = false;
  }
  out += "},\"points\":[";
  first = true;
  for (const BenchPoint& point : points) {
    out += StrFormat("%s{\"key\":\"%s\",\"value\":%s,\"unit\":\"%s\"}",
                     first ? "" : ",", JsonEscape(point.key).c_str(),
                     JsonNumber(point.value).c_str(),
                     JsonEscape(point.unit).c_str());
    first = false;
  }
  out += "]}";
  return out;
}

Result<BenchReport> ParseBenchJson(std::string_view json) {
  return Parser(json).ParseDocument();
}

Result<BenchReport> ReadBenchJsonFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound(StrFormat("cannot open %s", path.c_str()));
  std::stringstream buffer;
  buffer << in.rdbuf();
  Result<BenchReport> report = ParseBenchJson(buffer.str());
  if (!report.ok()) {
    return Status::InvalidArgument(StrFormat(
        "%s: %s", path.c_str(), report.status().message().c_str()));
  }
  return report;
}

Status WriteBenchJsonFile(const BenchReport& report, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::Internal(StrFormat("cannot write %s", path.c_str()));
  }
  out << report.ToJson() << "\n";
  if (!out) {
    return Status::Internal(StrFormat("write failed for %s", path.c_str()));
  }
  return Status::OK();
}

}  // namespace blitz
