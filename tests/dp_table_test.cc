#include "core/dp_table.h"

#include <gtest/gtest.h>

namespace blitz {
namespace {

TEST(DpTableTest, CreateAllocatesRequestedColumns) {
  Result<DpTable> table = DpTable::Create(4, true, true);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_relations(), 4);
  EXPECT_EQ(table->size(), 16u);
  EXPECT_TRUE(table->has_pi_fan());
  EXPECT_TRUE(table->has_aux());
  EXPECT_EQ(table->AllRelations(), RelSet::FirstN(4));
}

TEST(DpTableTest, OptionalColumnsAbsentWhenNotRequested) {
  Result<DpTable> table = DpTable::Create(3, false, false);
  ASSERT_TRUE(table.ok());
  EXPECT_FALSE(table->has_pi_fan());
  EXPECT_FALSE(table->has_aux());
}

TEST(DpTableTest, FreshTableHasAllSetsRejected) {
  Result<DpTable> table = DpTable::Create(3, false, false);
  ASSERT_TRUE(table.ok());
  for (std::uint64_t s = 1; s < table->size(); ++s) {
    EXPECT_TRUE(table->rejected(RelSet::FromWord(s)));
  }
}

TEST(DpTableTest, RejectsOutOfRangeN) {
  EXPECT_FALSE(DpTable::Create(0, false, false).ok());
  EXPECT_FALSE(DpTable::Create(-1, false, false).ok());
  EXPECT_FALSE(DpTable::Create(kMaxRelations + 1, false, false).ok());
  EXPECT_EQ(DpTable::Create(99, false, false).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DpTableTest, MemoryEstimateScalesWithColumns) {
  Result<DpTable> small = DpTable::Create(8, false, false);
  Result<DpTable> big = DpTable::Create(8, true, true);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(big.ok());
  EXPECT_GT(big->MemoryBytes(), small->MemoryBytes());
  // Base columns: cost (4) + card (8) + best_lhs (4) = 16 bytes per row —
  // the paper's Section 4.1 row size.
  EXPECT_EQ(small->MemoryBytes(), 16u * 256u);
}

TEST(DpTableTest, EstimateMatchesActualAllocationForEveryShape) {
  // EstimateBytes is the governor's admission-control number; MemoryBytes
  // is the post-allocation report. Both must equal the bytes the column
  // vectors actually reserve, for every column combination and every n a
  // test can afford to allocate (2^20 rows tops out at ~32 MiB).
  for (int n = 1; n <= 20; ++n) {
    for (const bool with_pi_fan : {false, true}) {
      for (const bool with_aux : {false, true}) {
        Result<DpTable> table = DpTable::Create(n, with_pi_fan, with_aux);
        ASSERT_TRUE(table.ok()) << "n=" << n;
        const std::uint64_t estimate =
            DpTable::EstimateBytes(n, with_pi_fan, with_aux);
        EXPECT_EQ(table->MemoryBytes(), estimate)
            << "n=" << n << " pi_fan=" << with_pi_fan << " aux=" << with_aux;
        EXPECT_EQ(table->AllocatedBytes(), estimate)
            << "n=" << n << " pi_fan=" << with_pi_fan << " aux=" << with_aux;
      }
    }
  }
}

TEST(DpTableTest, EstimateIsZeroOutsideValidRange) {
  EXPECT_EQ(DpTable::EstimateBytes(0, true, true), 0u);
  EXPECT_EQ(DpTable::EstimateBytes(-3, false, false), 0u);
  EXPECT_EQ(DpTable::EstimateBytes(kMaxRelations + 1, false, false), 0u);
  EXPECT_EQ(DpTable{}.MemoryBytes(), 0u);
  EXPECT_EQ(DpTable{}.AllocatedBytes(), 0u);
}

TEST(DpTableTest, ColumnsAreWritableThroughRawPointers) {
  Result<DpTable> table = DpTable::Create(2, true, true);
  ASSERT_TRUE(table.ok());
  table->cost_data()[3] = 42.0f;
  table->card_data()[3] = 7.0;
  table->best_lhs_data()[3] = 1;
  table->pi_fan_data()[3] = 0.5;
  const RelSet both = RelSet::FirstN(2);
  EXPECT_EQ(table->cost(both), 42.0f);
  EXPECT_DOUBLE_EQ(table->card(both), 7.0);
  EXPECT_EQ(table->best_lhs(both), RelSet::Singleton(0));
  EXPECT_DOUBLE_EQ(table->pi_fan(both), 0.5);
  EXPECT_FALSE(table->rejected(both));
}

TEST(DpTableTest, MoveTransfersOwnership) {
  Result<DpTable> table = DpTable::Create(3, true, false);
  ASSERT_TRUE(table.ok());
  table->cost_data()[5] = 1.5f;
  DpTable moved = std::move(table).value();
  EXPECT_EQ(moved.num_relations(), 3);
  EXPECT_EQ(moved.cost(RelSet::FromWord(5)), 1.5f);
}

}  // namespace
}  // namespace blitz
