#ifndef BLITZ_SIMD_DISPATCH_H_
#define BLITZ_SIMD_DISPATCH_H_

#include <string_view>

#include "common/status.h"
#include "simd/split_filter.h"

namespace blitz {

/// Which realization of the find_best_split filter a pass runs. kAuto is a
/// *request* only (the default in every options struct); resolution turns
/// it into one of the concrete levels, so a resolved level is never kAuto.
///
///   kScalar — the classic unblocked nested-if loop (the paper's Section
///             4.2 code, byte-for-byte the pre-SIMD optimizer).
///   kBlock  — the dense-compaction driver with the portable (no target
///             features) kernel pair; the measurable control for "does
///             the restructuring alone help" and the shape non-x86
///             hardware would run.
///   kAvx2   — dense-compaction driver, 8-lane build/filter kernels.
///   kAvx512 — dense-compaction driver, 16-lane build/filter kernels.
enum class SimdLevel { kAuto, kScalar, kBlock, kAvx2, kAvx512 };

/// "auto", "scalar", "block", "avx2", "avx512".
const char* SimdLevelName(SimdLevel level);

/// Parses the strings produced by SimdLevelName (case-sensitive).
Result<SimdLevel> ParseSimdLevel(std::string_view s);

/// The best level this binary can actually run: the highest instruction
/// set that was both compiled into the kernels and is reported by the CPU
/// (cpuid via __builtin_cpu_supports). kScalar when neither AVX level
/// qualifies — kBlock is never chosen automatically, because on hardware
/// without wide gathers the classic loop is the proven baseline. The probe
/// runs once per process (function-local static).
SimdLevel DetectCpuSimdLevel();

/// Resolves a request to a concrete level, once per optimizer pass:
///   1. kAuto consults the BLITZ_SIMD environment variable
///      ("scalar"|"block"|"avx2"|"avx512"; unset or unparsable falls
///      through to DetectCpuSimdLevel()).
///   2. A request (explicit or from the environment) above what this
///      machine supports is clamped down (avx512 -> avx2 -> scalar), so a
///      forced level can never fault; kBlock is always runnable.
SimdLevel ResolveSimdLevel(SimdLevel requested);

/// ResolveSimdLevel plus provenance: `from_auto` is true when the level
/// came from the cpuid probe because neither the request nor BLITZ_SIMD
/// supplied an explicit level. Auto-chosen levels are subject to the
/// per-cost-model refinement in core/optimizer.cc (the batched kernel
/// only pays off where the operand gate is tight — see
/// CostModel::kSplitGateTight); explicit requests are always honored.
struct SimdResolution {
  SimdLevel level;
  bool from_auto;
};
SimdResolution ResolveSimdLevelDetailed(SimdLevel requested);

/// Minimum problem size (relations) for an *auto*-chosen level to engage
/// the batched kernel. Below this the dense-compaction build cost and the
/// per-subset setup outweigh the filter's win — BENCH_fig2.json measured
/// 0.72-0.98x at n = 5-11 for the gate-tight naive model, crossing over at
/// n = 12 — so auto falls back to the classic loop. Explicit requests
/// (--simd=, BLITZ_SIMD) are exempt, keeping every combination measurable.
inline constexpr int kSimdMinAutoRelations = 12;

/// The dense-compaction build/filter pair for a *resolved* level, or
/// nullptr for kScalar — the drivers treat a null kernel as "run the
/// classic loop". The returned pointer has static storage duration.
const SplitKernel* GetSplitKernel(SimdLevel resolved);

}  // namespace blitz

#endif  // BLITZ_SIMD_DISPATCH_H_
