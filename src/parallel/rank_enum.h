#ifndef BLITZ_PARALLEL_RANK_ENUM_H_
#define BLITZ_PARALLEL_RANK_ENUM_H_

#include <array>
#include <cstdint>

#include "common/check.h"

namespace blitz {

/// Enumeration and unranking of the cardinality-k "ranks" of the subset
/// lattice, the unit of work the rank-synchronous parallel optimizer shards
/// across threads. A rank is the C(n,k) bit-vectors of popcount k over n
/// relations, ordered by integer value — which for fixed popcount is
/// exactly colexicographic order on combinations, so the combinatorial
/// number system unranks directly into the Section 4.1 set representation.

/// Largest word width the rank enumeration supports. All C(n,k) with
/// n <= 63 fit in a uint64 (the largest, C(63,31), is ~9.2e17).
inline constexpr int kMaxRankBits = 63;

namespace internal {

/// Pascal's triangle up to kMaxRankBits, built once at compile time.
struct BinomialTable {
  std::array<std::array<std::uint64_t, kMaxRankBits + 1>, kMaxRankBits + 1>
      c{};

  constexpr BinomialTable() {
    for (int n = 0; n <= kMaxRankBits; ++n) {
      c[n][0] = 1;
      for (int k = 1; k <= n; ++k) {
        c[n][k] = c[n - 1][k - 1] + (k <= n - 1 ? c[n - 1][k] : 0);
      }
    }
  }
};

inline constexpr BinomialTable kBinomial{};

}  // namespace internal

/// C(n, k) for 0 <= n <= 63; 0 when k is out of [0, n].
constexpr std::uint64_t Binomial(int n, int k) {
  if (n < 0 || n > kMaxRankBits || k < 0 || k > n) return 0;
  return internal::kBinomial.c[static_cast<std::size_t>(n)]
                             [static_cast<std::size_t>(k)];
}

/// The smallest k-subset in integer order: {R_0 .. R_{k-1}}.
constexpr std::uint64_t FirstKSubset(int k) {
  return (std::uint64_t{1} << k) - 1;
}

/// Gosper's hack: the next bit-vector with the same popcount in increasing
/// integer order. `v` must be nonzero and not the rank's maximum (the
/// driver bounds iteration by the rank's size instead of testing for
/// wraparound).
constexpr std::uint64_t NextKSubset(std::uint64_t v) {
  const std::uint64_t c = v & (~v + 1);
  const std::uint64_t r = v + c;
  return r | (((v ^ r) >> 2) / c);
}

/// The r-th (0-based) k-subset of {0 .. n-1} in increasing integer order —
/// the combinatorial number system unranking. With NextKSubset this lets
/// each worker jump straight to its shard of a rank: start at
/// NthKSubset(n, k, begin) and step NextKSubset (end - begin - 1) times.
/// Requires 1 <= k <= n <= 63 and r < C(n, k).
inline std::uint64_t NthKSubset(int n, int k, std::uint64_t r) {
  BLITZ_CHECK(k >= 1 && k <= n && n <= kMaxRankBits);
  BLITZ_CHECK(r < Binomial(n, k));
  std::uint64_t out = 0;
  int c = n - 1;
  for (int i = k; i >= 1; --i) {
    // Greedy digit of the combinatorial number system: the largest c with
    // C(c, i) <= r. C(i-1, i) = 0 bounds the scan.
    while (Binomial(c, i) > r) --c;
    out |= std::uint64_t{1} << c;
    r -= Binomial(c, i);
    --c;
  }
  return out;
}

}  // namespace blitz

#endif  // BLITZ_PARALLEL_RANK_ENUM_H_
