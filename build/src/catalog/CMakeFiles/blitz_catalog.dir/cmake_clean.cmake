file(REMOVE_RECURSE
  "CMakeFiles/blitz_catalog.dir/catalog.cc.o"
  "CMakeFiles/blitz_catalog.dir/catalog.cc.o.d"
  "CMakeFiles/blitz_catalog.dir/filters.cc.o"
  "CMakeFiles/blitz_catalog.dir/filters.cc.o.d"
  "libblitz_catalog.a"
  "libblitz_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blitz_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
