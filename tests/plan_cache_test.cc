// Property tests for the serving tier's plan cache (serve/plancache.h):
// fingerprint canonicalization (relabeling and edge-order invariance,
// option/statistic sensitivity, no collisions across the Appendix grid),
// hit/miss/evict/bypass accounting, bit-identical reuse, and single-flight
// coalescing.

#include "serve/plancache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/optimize_query.h"
#include "card/no_estimate.h"
#include "catalog/catalog.h"
#include "common/rng.h"
#include "common/status.h"
#include "governor/faultpoints.h"
#include "query/join_graph.h"
#include "testing/fuzzer.h"

namespace blitz {
namespace {

/// A small asymmetric problem: three relations with distinct cardinalities
/// on a chain, so the canonical labeling is forced by the statistics alone.
struct Problem {
  Catalog catalog;
  JoinGraph graph;
};

Problem ChainProblem() {
  Result<Catalog> catalog = Catalog::FromCardinalities({100, 2000, 35});
  EXPECT_TRUE(catalog.ok());
  JoinGraph graph(3);
  EXPECT_TRUE(graph.AddPredicate(0, 1, 0.01).ok());
  EXPECT_TRUE(graph.AddPredicate(1, 2, 0.05).ok());
  return {*std::move(catalog), std::move(graph)};
}

/// Applies permutation `p` (old index i -> new index p[i]) to a problem:
/// the same optimization problem under different relation labels.
Problem Permute(const Problem& problem, const std::vector<int>& p) {
  const int n = problem.catalog.num_relations();
  std::vector<RelationStats> relations(n);
  for (int i = 0; i < n; ++i) {
    relations[p[i]] = problem.catalog.relation(i);
  }
  Result<Catalog> catalog = Catalog::Create(std::move(relations));
  EXPECT_TRUE(catalog.ok());
  JoinGraph graph(n);
  for (const Predicate& edge : problem.graph.predicates()) {
    EXPECT_TRUE(
        graph.AddPredicate(p[edge.lhs], p[edge.rhs], edge.selectivity).ok());
  }
  return {*std::move(catalog), std::move(graph)};
}

std::vector<int> LeafRelations(const PlanNode& node) {
  if (node.is_leaf()) return {node.relation()};
  std::vector<int> leaves = LeafRelations(*node.left);
  const std::vector<int> right = LeafRelations(*node.right);
  leaves.insert(leaves.end(), right.begin(), right.end());
  return leaves;
}

TEST(PlanFingerprintTest, DeterministicAndEdgeOrderInvariant) {
  const Problem problem = ChainProblem();
  const QueryOptimizerOptions options;
  const PlanFingerprint a =
      ComputePlanFingerprint(problem.catalog, problem.graph, options);
  const PlanFingerprint b =
      ComputePlanFingerprint(problem.catalog, problem.graph, options);
  EXPECT_TRUE(a.exact_canonical);
  EXPECT_EQ(a.canonical, b.canonical);
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.to_canonical, b.to_canonical);

  // The same graph with its edges declared in the opposite order.
  JoinGraph reordered(3);
  ASSERT_TRUE(reordered.AddPredicate(2, 1, 0.05).ok());
  ASSERT_TRUE(reordered.AddPredicate(1, 0, 0.01).ok());
  const PlanFingerprint c =
      ComputePlanFingerprint(problem.catalog, reordered, options);
  EXPECT_EQ(a.canonical, c.canonical);
}

TEST(PlanFingerprintTest, InvariantUnderRelationRelabeling) {
  const Problem problem = ChainProblem();
  const QueryOptimizerOptions options;
  const PlanFingerprint base =
      ComputePlanFingerprint(problem.catalog, problem.graph, options);
  ASSERT_TRUE(base.exact_canonical);

  std::vector<int> perm = {0, 1, 2};
  do {
    const Problem relabeled = Permute(problem, perm);
    const PlanFingerprint fp =
        ComputePlanFingerprint(relabeled.catalog, relabeled.graph, options);
    EXPECT_TRUE(fp.exact_canonical);
    EXPECT_EQ(base.canonical, fp.canonical)
        << "perm " << perm[0] << perm[1] << perm[2];
  } while (std::next_permutation(perm.begin(), perm.end()));
}

TEST(PlanFingerprintTest, SymmetricProblemIsStillRelabelingInvariant) {
  // Four identical relations on a cycle: WL refinement alone cannot split
  // the colors, so this exercises the individualization-refinement search.
  Result<Catalog> catalog = Catalog::FromCardinalities({50, 50, 50, 50});
  ASSERT_TRUE(catalog.ok());
  JoinGraph graph(4);
  ASSERT_TRUE(graph.AddPredicate(0, 1, 0.1).ok());
  ASSERT_TRUE(graph.AddPredicate(1, 2, 0.1).ok());
  ASSERT_TRUE(graph.AddPredicate(2, 3, 0.1).ok());
  ASSERT_TRUE(graph.AddPredicate(3, 0, 0.1).ok());
  const Problem problem{*std::move(catalog), std::move(graph)};

  const QueryOptimizerOptions options;
  const PlanFingerprint base =
      ComputePlanFingerprint(problem.catalog, problem.graph, options);
  ASSERT_TRUE(base.exact_canonical);

  // Every cyclic rotation (and a reflection) is the same problem.
  const std::vector<std::vector<int>> perms = {
      {1, 2, 3, 0}, {2, 3, 0, 1}, {3, 0, 1, 2}, {3, 2, 1, 0}};
  for (const std::vector<int>& p : perms) {
    const Problem relabeled = Permute(problem, p);
    const PlanFingerprint fp =
        ComputePlanFingerprint(relabeled.catalog, relabeled.graph, options);
    EXPECT_TRUE(fp.exact_canonical);
    EXPECT_EQ(base.canonical, fp.canonical);
  }
}

TEST(PlanFingerprintTest, PlanAffectingChangesMiss) {
  const Problem problem = ChainProblem();
  QueryOptimizerOptions base_options;
  const PlanFingerprint base =
      ComputePlanFingerprint(problem.catalog, problem.graph, base_options);

  {  // Cost model.
    QueryOptimizerOptions options = base_options;
    options.cost_model = CostModelKind::kSortMerge;
    EXPECT_NE(base.canonical,
              ComputePlanFingerprint(problem.catalog, problem.graph, options)
                  .canonical);
  }
  {  // Estimator kind.
    QueryOptimizerOptions options = base_options;
    NoEstimateEstimator noest(problem.graph);
    options.estimator = &noest;
    EXPECT_NE(base.canonical,
              ComputePlanFingerprint(problem.catalog, problem.graph, options)
                  .canonical);
  }
  {  // Threshold ladder start.
    QueryOptimizerOptions options = base_options;
    options.initial_cost_threshold = 1e6f;
    EXPECT_NE(base.canonical,
              ComputePlanFingerprint(problem.catalog, problem.graph, options)
                  .canonical);
  }
  {  // Exhaustive limit (tier boundary).
    QueryOptimizerOptions options = base_options;
    options.exhaustive_limit = 4;
    EXPECT_NE(base.canonical,
              ComputePlanFingerprint(problem.catalog, problem.graph, options)
                  .canonical);
  }
  {  // Edge selectivity.
    JoinGraph graph(3);
    ASSERT_TRUE(graph.AddPredicate(0, 1, 0.011).ok());
    ASSERT_TRUE(graph.AddPredicate(1, 2, 0.05).ok());
    EXPECT_NE(
        base.canonical,
        ComputePlanFingerprint(problem.catalog, graph, base_options).canonical);
  }
  {  // Base cardinality.
    Result<Catalog> catalog = Catalog::FromCardinalities({100, 2000, 36});
    ASSERT_TRUE(catalog.ok());
    EXPECT_NE(
        base.canonical,
        ComputePlanFingerprint(*catalog, problem.graph, base_options).canonical);
  }
  {  // Missing edge (Cartesian product vs join).
    JoinGraph graph(3);
    ASSERT_TRUE(graph.AddPredicate(0, 1, 0.01).ok());
    EXPECT_NE(
        base.canonical,
        ComputePlanFingerprint(problem.catalog, graph, base_options).canonical);
  }
}

TEST(PlanFingerprintTest, DeadlineDoesNotAffectTheFingerprint) {
  const Problem problem = ChainProblem();
  QueryOptimizerOptions a;
  QueryOptimizerOptions b;
  b.budget.deadline_seconds = 1.5;
  EXPECT_EQ(ComputePlanFingerprint(problem.catalog, problem.graph, a).canonical,
            ComputePlanFingerprint(problem.catalog, problem.graph, b).canonical);
}

TEST(PlanFingerprintTest, BudgetExhaustionFallsBackToSafeMiss) {
  // A symmetric clique large enough that a 1-node IR budget aborts; the
  // fallback must still be deterministic and usable as a key.
  Result<Catalog> catalog =
      Catalog::FromCardinalities({50, 50, 50, 50, 50, 50});
  ASSERT_TRUE(catalog.ok());
  JoinGraph graph(6);
  for (int i = 0; i < 6; ++i) {
    for (int j = i + 1; j < 6; ++j) {
      ASSERT_TRUE(graph.AddPredicate(i, j, 0.1).ok());
    }
  }
  const QueryOptimizerOptions options;
  const PlanFingerprint a =
      ComputePlanFingerprint(*catalog, graph, options, /*search_budget=*/1);
  const PlanFingerprint b =
      ComputePlanFingerprint(*catalog, graph, options, /*search_budget=*/1);
  EXPECT_FALSE(a.exact_canonical);
  EXPECT_EQ(a.canonical, b.canonical);  // Byte-identical repeats still hit.
  EXPECT_EQ(static_cast<int>(a.to_canonical.size()), 6);
}

/// Invariant multiset signature of a problem: if two problems share it they
/// are at least statistically interchangeable (same relation stats, same
/// selectivity multiset). Used to vet apparent fingerprint collisions.
std::string ProblemSignature(const Catalog& catalog, const JoinGraph& graph) {
  std::vector<double> cards;
  for (int i = 0; i < catalog.num_relations(); ++i) {
    cards.push_back(catalog.cardinality(i));
  }
  std::sort(cards.begin(), cards.end());
  std::vector<double> sels;
  for (const Predicate& edge : graph.predicates()) {
    sels.push_back(edge.selectivity);
  }
  std::sort(sels.begin(), sels.end());
  std::string out;
  for (double c : cards) out += std::to_string(c) + ",";
  out += "|";
  for (double s : sels) out += std::to_string(s) + ",";
  return out;
}

// Two problems sampled from the fuzzer's Appendix grid may share a
// canonical encoding only when they really are the same problem (the grid
// does produce duplicates at zero variability), and every problem must
// agree with a relabeled copy of itself — the collision property the
// differential wall relies on.
TEST(PlanFingerprintTest, NoCollisionsAcrossTheAppendixGrid) {
  fuzz::FuzzerOptions options;
  options.seed = 20260809;
  options.min_relations = 2;
  options.max_relations = 9;
  ASSERT_TRUE(options.Validate().ok());

  const QueryOptimizerOptions opt_options;
  std::map<std::string, std::string> seen;  // canonical -> case label
  Rng rng(7);
  int exact = 0;
  for (std::uint64_t index = 0; index < 60; ++index) {
    Result<fuzz::FuzzCase> fuzz_case = fuzz::GenerateCase(options, index);
    ASSERT_TRUE(fuzz_case.ok());
    const PlanFingerprint fp = ComputePlanFingerprint(
        fuzz_case->catalog, fuzz_case->graph, opt_options);
    if (fp.exact_canonical) ++exact;

    // A random relabeling of the same case must agree (when canonical).
    const int n = fuzz_case->catalog.num_relations();
    std::vector<int> perm(n);
    for (int i = 0; i < n; ++i) perm[i] = i;
    for (int i = n - 1; i > 0; --i) {
      std::swap(perm[i],
                perm[static_cast<int>(rng.NextBounded(
                    static_cast<std::uint64_t>(i) + 1))]);
    }
    const Problem relabeled =
        Permute({fuzz_case->catalog, fuzz_case->graph}, perm);
    const PlanFingerprint relabeled_fp = ComputePlanFingerprint(
        relabeled.catalog, relabeled.graph, opt_options);
    if (fp.exact_canonical && relabeled_fp.exact_canonical) {
      EXPECT_EQ(fp.canonical, relabeled_fp.canonical) << fuzz_case->label;
    }

    const std::string signature =
        ProblemSignature(fuzz_case->catalog, fuzz_case->graph);
    const auto [it, inserted] = seen.emplace(fp.canonical, signature);
    if (!inserted) {
      // Same key twice: acceptable only for a genuinely identical problem.
      EXPECT_EQ(it->second, signature)
          << "collision on distinct problems: " << fuzz_case->label;
    }
  }
  // The IR budget must cover the bulk of the grid, or isomorph hits vanish.
  EXPECT_GE(exact, 55) << "IR search budget aborts too often";
}

/// Optimizes a problem and returns the result (test helper; report on so
/// counter identity is assertable).
OptimizedQuery OptimizeOrDie(const Problem& problem,
                             const QueryOptimizerOptions& base) {
  QueryOptimizerOptions options = base;
  options.collect_report = true;
  options.count_operations = true;
  Result<OptimizedQuery> result =
      OptimizeQuery(problem.catalog, problem.graph, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(*result);
}

TEST(PlanCacheTest, HitReturnsTheStoredResultBitIdentically) {
  const Problem problem = ChainProblem();
  const QueryOptimizerOptions options;
  const PlanFingerprint fp =
      ComputePlanFingerprint(problem.catalog, problem.graph, options);
  const OptimizedQuery computed = OptimizeOrDie(problem, options);

  PlanCache cache(PlanCache::Options{});
  EXPECT_FALSE(cache.Lookup(fp).has_value());
  cache.Insert(fp, computed);

  const std::optional<OptimizedQuery> hit = cache.Lookup(fp);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->from_cache);
  EXPECT_EQ(hit->tier, computed.tier);  // Provenance preserved.
  EXPECT_EQ(hit->passes, computed.passes);
  EXPECT_EQ(hit->cost, computed.cost);  // Bit-equal, not approximately.
  EXPECT_EQ(hit->plan.ToString(&problem.catalog),
            computed.plan.ToString(&problem.catalog));
  ASSERT_TRUE(hit->report.has_value());
  EXPECT_EQ(hit->report->counters.subsets_visited,
            computed.report->counters.subsets_visited);
  EXPECT_EQ(hit->report->counters.loop_iterations,
            computed.report->counters.loop_iterations);

  const PlanCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(PlanCacheTest, IsomorphHitIsRelabeledIntoTheRequestersLabels) {
  const Problem problem = ChainProblem();
  const std::vector<int> perm = {2, 0, 1};
  const Problem relabeled = Permute(problem, perm);

  const QueryOptimizerOptions options;
  const PlanFingerprint fp_a =
      ComputePlanFingerprint(problem.catalog, problem.graph, options);
  const PlanFingerprint fp_b =
      ComputePlanFingerprint(relabeled.catalog, relabeled.graph, options);
  ASSERT_EQ(fp_a.canonical, fp_b.canonical);

  PlanCache cache(PlanCache::Options{});
  cache.Insert(fp_a, OptimizeOrDie(problem, options));

  const std::optional<OptimizedQuery> hit = cache.Lookup(fp_b);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->from_cache);

  // The hit's plan lives in B's label space: its leaves are exactly B's
  // relation indices, and its cost equals what B computes from scratch.
  std::vector<int> leaves = LeafRelations(hit->plan.root());
  std::sort(leaves.begin(), leaves.end());
  EXPECT_EQ(leaves, (std::vector<int>{0, 1, 2}));
  // An isomorph hit must be *an* optimum in B's space — equal cost to a
  // fresh optimization. (Bit-identical plan shape is only guaranteed for
  // same-labeled repeats: tie-breaks are label-order dependent.)
  const OptimizedQuery direct = OptimizeOrDie(relabeled, options);
  EXPECT_EQ(hit->cost, direct.cost);
}

TEST(PlanCacheTest, LruEvictionByEntryCount) {
  PlanCache::Options cache_options;
  cache_options.max_entries = 2;
  cache_options.shards = 1;  // One shard so the global bound is exact.
  PlanCache cache(cache_options);

  const QueryOptimizerOptions options;
  std::vector<PlanFingerprint> fps;
  for (double card : {10.0, 20.0, 30.0}) {
    Result<Catalog> catalog = Catalog::FromCardinalities({card, card + 1});
    ASSERT_TRUE(catalog.ok());
    JoinGraph graph(2);
    ASSERT_TRUE(graph.AddPredicate(0, 1, 0.5).ok());
    const Problem problem{*std::move(catalog), std::move(graph)};
    const PlanFingerprint fp =
        ComputePlanFingerprint(problem.catalog, problem.graph, options);
    cache.Insert(fp, OptimizeOrDie(problem, options));
    fps.push_back(fp);
  }

  const PlanCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.inserts, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_FALSE(cache.Lookup(fps[0]).has_value());  // Oldest evicted.
  EXPECT_TRUE(cache.Lookup(fps[1]).has_value());
  EXPECT_TRUE(cache.Lookup(fps[2]).has_value());
}

TEST(PlanCacheTest, DisabledCacheBypassesEverything) {
  PlanCache::Options cache_options;
  cache_options.max_entries = 0;
  PlanCache cache(cache_options);
  EXPECT_TRUE(cache.disabled());

  const Problem problem = ChainProblem();
  const QueryOptimizerOptions options;
  const PlanFingerprint fp =
      ComputePlanFingerprint(problem.catalog, problem.graph, options);
  cache.Insert(fp, OptimizeOrDie(problem, options));
  EXPECT_FALSE(cache.Lookup(fp).has_value());
  const PlanCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_GE(stats.bypasses, 1u);
}

TEST(PlanCacheTest, DegradedResultsAreNeverCached) {
  const Problem problem = ChainProblem();
  const QueryOptimizerOptions options;
  const PlanFingerprint fp =
      ComputePlanFingerprint(problem.catalog, problem.graph, options);
  OptimizedQuery degraded = OptimizeOrDie(problem, options);
  degraded.report->degradations.push_back("exhaustive: deadline exceeded");

  PlanCache cache(PlanCache::Options{});
  cache.Insert(fp, degraded);
  EXPECT_FALSE(cache.Lookup(fp).has_value());
  EXPECT_GE(cache.GetStats().bypasses, 1u);
}

TEST(PlanCacheTest, ArmedInsertFaultBypassesTheInsert) {
  FaultRegistry registry;
  ScopedFaultRegistry scoped(&registry);
  registry.Arm(kFaultServeCacheInsert, FaultSpec{});

  const Problem problem = ChainProblem();
  const QueryOptimizerOptions options;
  const PlanFingerprint fp =
      ComputePlanFingerprint(problem.catalog, problem.graph, options);
  PlanCache cache(PlanCache::Options{});
  cache.Insert(fp, OptimizeOrDie(problem, options));
  EXPECT_FALSE(cache.Lookup(fp).has_value());
  EXPECT_GE(cache.GetStats().bypasses, 1u);

  // The fault fired once; the next insert lands.
  cache.Insert(fp, OptimizeOrDie(problem, options));
  EXPECT_TRUE(cache.Lookup(fp).has_value());
}

TEST(PlanCacheTest, GetOrComputeCoalescesConcurrentIdenticalRequests) {
  const Problem problem = ChainProblem();
  const QueryOptimizerOptions options;
  const PlanFingerprint fp =
      ComputePlanFingerprint(problem.catalog, problem.graph, options);
  const OptimizedQuery computed = OptimizeOrDie(problem, options);

  PlanCache cache(PlanCache::Options{});
  std::atomic<int> computes{0};
  const auto compute = [&]() -> Result<OptimizedQuery> {
    computes.fetch_add(1);
    // Hold the leadership long enough that the other threads pile up.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return OptimizeOrDie(problem, options);
  };

  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::vector<Result<OptimizedQuery>> results;
  results.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    results.emplace_back(Status::Internal("unset"));
  }
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] { results[i] = cache.GetOrCompute(fp, compute); });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(computes.load(), 1) << "identical in-flight requests must coalesce";
  for (const Result<OptimizedQuery>& result : results) {
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->cost, computed.cost);
  }
  const PlanCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.coalesced, static_cast<std::uint64_t>(kThreads - 1));
  EXPECT_EQ(stats.inserts, 1u);
}

TEST(PlanCacheTest, FailedLeaderDoesNotPoisonWaiters) {
  const Problem problem = ChainProblem();
  const QueryOptimizerOptions options;
  const PlanFingerprint fp =
      ComputePlanFingerprint(problem.catalog, problem.graph, options);

  PlanCache cache(PlanCache::Options{});
  Result<OptimizedQuery> failed =
      cache.GetOrCompute(fp, []() -> Result<OptimizedQuery> {
        return Status::Internal("leader exploded");
      });
  EXPECT_FALSE(failed.ok());

  // The key is not stuck in-flight: the next caller computes fresh.
  Result<OptimizedQuery> ok = cache.GetOrCompute(
      fp, [&]() -> Result<OptimizedQuery> { return OptimizeOrDie(problem, options); });
  ASSERT_TRUE(ok.ok());
  EXPECT_GT(ok->cost, 0);
}

}  // namespace
}  // namespace blitz
