// Edge-of-domain behavior for the core optimizer: minimal n, selectivity-1
// graphs, and genuine single-precision cost overflow (Section 6.3 /
// footnote 7: costs that overflow describe plans that would run for ~1e15
// years, and rejecting them outright is deliberate).

#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "plan/plan.h"
#include "test_util.h"

namespace blitz {
namespace {

TEST(OptimizerEdgeTest, TwoRelationJoin) {
  Result<Catalog> catalog = Catalog::FromCardinalities({100, 50});
  ASSERT_TRUE(catalog.ok());
  JoinGraph graph(2);
  ASSERT_TRUE(graph.AddPredicate(0, 1, 0.01).ok());
  Result<OptimizeOutcome> outcome =
      OptimizeJoin(*catalog, graph, OptimizerOptions{});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->cost, 50.0f);  // kappa_0 = 100 * 50 * 0.01
  Result<Plan> plan = Plan::ExtractFromTable(outcome->table);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->NumJoins(), 1);
}

TEST(OptimizerEdgeTest, SelectivityOneGraphBehavesLikeCartesian) {
  Result<Catalog> catalog = Catalog::FromCardinalities({10, 20, 30});
  ASSERT_TRUE(catalog.ok());
  JoinGraph graph(3);
  ASSERT_TRUE(graph.AddPredicate(0, 1, 1.0).ok());
  ASSERT_TRUE(graph.AddPredicate(1, 2, 1.0).ok());
  Result<OptimizeOutcome> join =
      OptimizeJoin(*catalog, graph, OptimizerOptions{});
  Result<OptimizeOutcome> cartesian =
      OptimizeCartesian(*catalog, OptimizerOptions{});
  ASSERT_TRUE(join.ok());
  ASSERT_TRUE(cartesian.ok());
  EXPECT_EQ(join->cost, cartesian->cost);
}

TEST(OptimizerEdgeTest, FloatOverflowRejectsAllPlans) {
  // Every plan's final kappa'(full set) overflows single precision, so
  // even the unbounded optimizer reports failure — footnote 7's "plans
  // that would run for 3.2e15 years".
  Result<Catalog> catalog = Catalog::FromCardinalities({1e200, 1e200});
  ASSERT_TRUE(catalog.ok());
  Result<OptimizeOutcome> outcome =
      OptimizeCartesian(*catalog, OptimizerOptions{});
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->found_plan());
  EXPECT_FALSE(Plan::ExtractFromTable(outcome->table).ok());
}

TEST(OptimizerEdgeTest, OverflowOnlyInIntermediatesIsAvoided) {
  // Huge bases but selective predicates: plans that join through the
  // predicates stay finite, while product-first plans overflow; the
  // optimizer must find the finite ones.
  Result<Catalog> catalog =
      Catalog::FromCardinalities({1e25, 1e25, 1e25});
  ASSERT_TRUE(catalog.ok());
  JoinGraph graph(3);
  ASSERT_TRUE(graph.AddPredicate(0, 1, 1e-25).ok());
  ASSERT_TRUE(graph.AddPredicate(1, 2, 1e-25).ok());
  Result<OptimizeOutcome> outcome =
      OptimizeJoin(*catalog, graph, OptimizerOptions{});
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->found_plan());
  Result<Plan> plan = Plan::ExtractFromTable(outcome->table);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->CountCartesianProducts(graph), 0);
}

TEST(OptimizerEdgeTest, SubUnitCardinalitiesOptimizeCleanly) {
  // Fractional estimated cardinalities (products of tiny selectivities)
  // must not break any model.
  Result<Catalog> catalog = Catalog::FromCardinalities({0.5, 2, 3});
  ASSERT_TRUE(catalog.ok());
  JoinGraph graph(3);
  ASSERT_TRUE(graph.AddPredicate(0, 1, 0.1).ok());
  ASSERT_TRUE(graph.AddPredicate(1, 2, 0.1).ok());
  for (const CostModelKind kind :
       {CostModelKind::kNaive, CostModelKind::kSortMerge,
        CostModelKind::kDiskNestedLoops, CostModelKind::kMinSmDnl,
        CostModelKind::kHash, CostModelKind::kMinAll}) {
    OptimizerOptions options;
    options.cost_model = kind;
    Result<OptimizeOutcome> outcome = OptimizeJoin(*catalog, graph, options);
    ASSERT_TRUE(outcome.ok()) << CostModelKindToString(kind);
    EXPECT_TRUE(outcome->found_plan()) << CostModelKindToString(kind);
    EXPECT_GE(outcome->cost, 0.0f) << CostModelKindToString(kind);
  }
}

TEST(OptimizerEdgeTest, MaxSupportedRelationCountAllocates) {
  // Allocation-path check near the ceiling: n = 22 is ~100 MB of table.
  Result<DpTable> table = DpTable::Create(22, true, false);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->size(), std::uint64_t{1} << 22);
}

TEST(OptimizerEdgeTest, CountersOffLeavesZeros) {
  const auto instance = blitz::testing::MakeRandomInstance(6, 1);
  OptimizerOptions options;
  options.count_operations = false;
  Result<OptimizeOutcome> outcome =
      OptimizeJoin(instance.catalog, instance.graph, options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->counters.loop_iterations, 0u);
  EXPECT_EQ(outcome->counters.subsets_visited, 0u);
}

}  // namespace
}  // namespace blitz
