#ifndef BLITZ_PLAN_ALGORITHM_CHOICE_H_
#define BLITZ_PLAN_ALGORITHM_CHOICE_H_

#include "catalog/catalog.h"
#include "cost/cost_model.h"
#include "plan/plan.h"
#include "query/join_graph.h"

namespace blitz {

/// The Section 6.5 post-pass for multiple join algorithms: "On completion of
/// optimization, a single traversal of the optimal plan suffices to attach
/// the appropriate algorithm to each join node."
///
/// For the kMinSmDnl model each join node gets whichever of sort-merge /
/// disk-nested-loops is cheaper for its operand cardinalities; for the
/// single-algorithm models the corresponding algorithm is attached
/// everywhere (hash for the naive model, which does not commit to a physical
/// algorithm). Joins with no spanning predicate are marked as Cartesian
/// products regardless of the model.
void ChooseAlgorithms(PlanNode* node, const Catalog& catalog,
                      const JoinGraph& graph, CostModelKind kind);

/// Convenience overload on Plan.
void ChooseAlgorithms(Plan* plan, const Catalog& catalog,
                      const JoinGraph& graph, CostModelKind kind);

}  // namespace blitz

#endif  // BLITZ_PLAN_ALGORITHM_CHOICE_H_
