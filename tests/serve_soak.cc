// serve_soak: closed-loop soak harness for the blitzd serving tier.
//
// Usage:
//   serve_soak [--seconds=S] [--seed=N] [--clients=C] [--workers=W]
//              [--no-chaos] [--repro-dir=DIR] [--verbose]
//
// Drives an in-process BlitzServer with C concurrent pipelining clients
// sending fuzzer-generated mixed-n queries — salted with malformed bodies,
// near-zero deadlines, and raw protocol garbage — while a chaos thread
// randomly arms and disarms the serve.* fault points. The run passes iff:
//
//   - every response frame parses (the server never emits garbage),
//   - every OK body parses as a reply (plan/cost/tier present),
//   - every error body carries a message,
//   - after drain, the server owes no responses (in_flight == 0).
//
// Deterministic from --seed: traffic, fault schedule, and injection points
// all derive from it. On a violation the offending request body (when
// known) is written under --repro-dir and the run exits 1.
//
// CI runs this under ASan/UBSan for 60s (serve-soak job); CTest runs a
// short bounded slice (label `serve`). Crashes, leaks, and hangs surface
// as nonzero exit / sanitizer reports / job timeout respectively.
//
// Exit codes: 0 pass, 1 violation, 2 usage.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "governor/faultpoints.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/stream.h"
#include "serve/wire.h"
#include "testing/fuzzer.h"
#include "textio/bjq.h"

namespace {

using blitz::BlitzClient;
using blitz::BlitzServer;
using blitz::CostModelKind;
using blitz::CreateDuplexPipe;
using blitz::FaultKind;
using blitz::FaultRegistry;
using blitz::FaultSpec;
using blitz::MetricsRegistry;
using blitz::ParseReplyBody;
using blitz::ResponseFrame;
using blitz::Result;
using blitz::Rng;
using blitz::ScopedFaultRegistry;
using blitz::ServerOptions;
using blitz::SetGlobalMetrics;
using blitz::StatusCode;
using blitz::WriteBjq;

constexpr int kExitOk = 0;
constexpr int kExitViolation = 1;
constexpr int kExitUsage = 2;

struct SoakConfig {
  double seconds = 5;
  std::uint64_t seed = 20260808;
  int clients = 8;
  int workers = 4;
  bool chaos = true;
  std::string repro_dir;
  bool verbose = false;
};

struct SoakTotals {
  std::atomic<std::uint64_t> sent{0};
  std::atomic<std::uint64_t> responses{0};
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::uint64_t> reconnects{0};
  std::atomic<std::uint64_t> violations{0};
};

void ReportViolation(const SoakConfig& config, SoakTotals* totals,
                     const std::string& what, const std::string& body) {
  const std::uint64_t count = ++totals->violations;
  std::fprintf(stderr, "serve_soak: VIOLATION: %s\n", what.c_str());
  if (!config.repro_dir.empty() && !body.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config.repro_dir, ec);
    const std::string path = config.repro_dir + "/violation-" +
                             std::to_string(count) + ".bjq";
    std::ofstream out(path);
    out << "# serve_soak --seed=" << config.seed << "\n# " << what << "\n"
        << body;
    std::fprintf(stderr, "serve_soak: repro body written to %s\n",
                 path.c_str());
  }
}

/// One client's closed loop: send a pipelined window, read it back,
/// validate every frame, reconnect when a connection-level event (accept
/// fault, protocol garbage we sent) ends the stream.
void ClientLoop(const SoakConfig& config, BlitzServer* server, int index,
                const std::atomic<bool>* stop, SoakTotals* totals) {
  Rng rng(blitz::DeriveSeed(config.seed, 1000 + static_cast<std::uint64_t>(index)));
  blitz::fuzz::FuzzerOptions fuzz_options;
  fuzz_options.seed = blitz::DeriveSeed(config.seed, static_cast<std::uint64_t>(index));
  fuzz_options.min_relations = 2;
  fuzz_options.max_relations = 15;
  std::uint64_t case_index = 0;

  std::unique_ptr<blitz::ByteStream> client_end;
  std::unique_ptr<blitz::ByteStream> server_end;
  std::unique_ptr<BlitzClient> client;
  std::thread serve_thread;
  const auto connect = [&] {
    auto pipe = CreateDuplexPipe(/*buffer_capacity=*/1 << 18);
    client_end = std::move(pipe.first);
    server_end = std::move(pipe.second);
    serve_thread = std::thread([server, stream = server_end.get()] {
      (void)server->Serve(stream);
      stream->Close();  // EOF to the client when the server hangs up first.
    });
    BlitzClient::Options options;
    options.tenant = "soak-" + std::to_string(index);
    client = std::make_unique<BlitzClient>(client_end.get(),
                                           std::move(options));
  };
  const auto disconnect = [&] {
    if (serve_thread.joinable()) {
      client_end->CloseWrite();
      serve_thread.join();
    }
    client.reset();
    client_end.reset();
    server_end.reset();
  };
  connect();

  while (!stop->load(std::memory_order_relaxed)) {
    // Compose a window of pipelined requests: mostly well-formed fuzz
    // queries, salted with malformed bodies and near-zero deadlines.
    const int window = 1 + static_cast<int>(rng.NextBounded(8));
    std::vector<std::string> bodies;
    bool sent_protocol_garbage = false;
    int sent = 0;
    for (int i = 0; i < window; ++i) {
      const double dice = rng.NextDouble();
      if (dice < 0.05) {
        // Raw protocol garbage: ends the connection by design.
        if (client_end->Write("\x01garbage\xff not a frame\n").ok()) {
          sent_protocol_garbage = true;
        }
        break;
      }
      std::string body;
      if (dice < 0.15) {
        body = "relation A 100\nthis line does not parse\n";
      } else {
        Result<blitz::fuzz::FuzzCase> fuzz_case =
            blitz::fuzz::GenerateCase(fuzz_options, case_index++);
        if (!fuzz_case.ok()) continue;
        body = WriteBjq(
            blitz::fuzz::ToQuerySpec(*fuzz_case, CostModelKind::kNaive));
      }
      const double deadline_ms =
          rng.NextDouble() < 0.2 ? 0.05 + rng.NextDouble() : 0;
      if (!client->Send(body, deadline_ms).ok()) break;
      bodies.push_back(std::move(body));
      ++sent;
      totals->sent.fetch_add(1, std::memory_order_relaxed);
    }

    bool reconnect_needed = sent_protocol_garbage;
    for (int i = 0; i < sent; ++i) {
      Result<std::optional<ResponseFrame>> response = client->Receive();
      if (!response.ok()) {
        // The server wrote bytes that do not parse as a frame: always a
        // violation, the one thing the serving tier must never do.
        ReportViolation(config, totals,
                        "unparseable response frame: " +
                            response.status().ToString(),
                        i < static_cast<int>(bodies.size()) ? bodies[static_cast<std::size_t>(i)] : "");
        reconnect_needed = true;
        break;
      }
      if (!response->has_value()) {
        // EOF mid-window: a connection-level event (accept fault) ended
        // the stream after shedding. Unanswered sends are not violations —
        // the server answered with its id-0 terminal response or clean
        // close.
        reconnect_needed = true;
        break;
      }
      totals->responses.fetch_add(1, std::memory_order_relaxed);
      const ResponseFrame& frame = **response;
      if (frame.code == StatusCode::kOk) {
        totals->ok.fetch_add(1, std::memory_order_relaxed);
        if (!ParseReplyBody(frame.body).ok()) {
          ReportViolation(config, totals, "OK response with invalid body",
                          i < static_cast<int>(bodies.size()) ? bodies[static_cast<std::size_t>(i)] : "");
        }
      } else {
        totals->errors.fetch_add(1, std::memory_order_relaxed);
        if (frame.body.empty()) {
          ReportViolation(config, totals,
                          std::string("empty error message for code ") +
                              blitz::StatusCodeToString(frame.code),
                          "");
        }
      }
      if (frame.id == 0) {  // Terminal connection response.
        reconnect_needed = true;
        break;
      }
    }
    if (reconnect_needed) {
      disconnect();
      totals->reconnects.fetch_add(1, std::memory_order_relaxed);
      connect();
    }
  }
  disconnect();
}

/// Randomly arms/disarms serve.* fault points on a deterministic schedule.
void ChaosLoop(const SoakConfig& config, FaultRegistry* registry,
               const std::atomic<bool>* stop) {
  Rng rng(blitz::DeriveSeed(config.seed, 0xC4A05));
  const std::string_view points[] = {
      blitz::kFaultServeAccept, blitz::kFaultServeParse,
      blitz::kFaultServeEnqueue, blitz::kFaultServeArenaAlloc,
      blitz::kFaultServeCacheInsert};
  while (!stop->load(std::memory_order_relaxed)) {
    const std::string_view point =
        points[rng.NextBounded(sizeof(points) / sizeof(points[0]))];
    FaultSpec spec;
    if (rng.NextBool(0.5)) {
      spec.kind = FaultKind::kBadAlloc;
    } else {
      spec.kind = FaultKind::kFailStatus;
      spec.status = blitz::Status::Internal("chaos injection");
    }
    spec.after = static_cast<int>(rng.NextBounded(3));
    spec.times = 1 + static_cast<int>(rng.NextBounded(4));
    registry->Arm(point, spec);
    std::this_thread::sleep_for(std::chrono::milliseconds(
        5 + static_cast<int>(rng.NextBounded(20))));
    if (rng.NextBool(0.3)) registry->Disarm(point);
  }
  for (const std::string_view point : points) registry->Disarm(point);
}

int Usage() {
  std::fprintf(stderr,
               "usage: serve_soak [--seconds=S] [--seed=N] [--clients=C] "
               "[--workers=W] [--no-chaos] [--repro-dir=DIR] [--verbose]\n");
  return kExitUsage;
}

}  // namespace

int main(int argc, char** argv) {
  SoakConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&arg](std::string_view prefix) {
      return std::string(arg.substr(prefix.size()));
    };
    if (arg.rfind("--seconds=", 0) == 0) {
      if (!blitz::ParseDouble(value("--seconds="), &config.seconds) ||
          config.seconds <= 0) {
        return Usage();
      }
    } else if (arg.rfind("--seed=", 0) == 0) {
      int seed = 0;
      if (!blitz::ParseInt(value("--seed="), &seed)) return Usage();
      config.seed = static_cast<std::uint64_t>(seed);
    } else if (arg.rfind("--clients=", 0) == 0) {
      if (!blitz::ParseInt(value("--clients="), &config.clients) ||
          config.clients < 1) {
        return Usage();
      }
    } else if (arg.rfind("--workers=", 0) == 0) {
      if (!blitz::ParseInt(value("--workers="), &config.workers) ||
          config.workers < 1) {
        return Usage();
      }
    } else if (arg == "--no-chaos") {
      config.chaos = false;
    } else if (arg.rfind("--repro-dir=", 0) == 0) {
      config.repro_dir = value("--repro-dir=");
    } else if (arg == "--verbose") {
      config.verbose = true;
    } else {
      return Usage();
    }
  }
  if (config.chaos && !blitz::kFaultInjectionCompiled) {
    std::fprintf(stderr,
                 "serve_soak: fault injection compiled out; running "
                 "without chaos\n");
    config.chaos = false;
  }

  MetricsRegistry metrics;
  SetGlobalMetrics(&metrics);
  FaultRegistry registry;
  std::unique_ptr<ScopedFaultRegistry> scoped;
  if (config.chaos) {
    scoped = std::make_unique<ScopedFaultRegistry>(&registry);
  }

  ServerOptions server_options;
  server_options.num_workers = config.workers;
  Result<std::unique_ptr<BlitzServer>> server =
      BlitzServer::Create(server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "serve_soak: %s\n",
                 server.status().ToString().c_str());
    SetGlobalMetrics(nullptr);
    return kExitViolation;
  }

  SoakTotals totals;
  std::atomic<bool> stop{false};
  std::vector<std::thread> client_threads;
  for (int c = 0; c < config.clients; ++c) {
    client_threads.emplace_back(ClientLoop, std::cref(config),
                                server->get(), c, &stop, &totals);
  }
  std::thread chaos_thread;
  if (config.chaos) {
    chaos_thread = std::thread(ChaosLoop, std::cref(config), &registry,
                               &stop);
  }

  std::this_thread::sleep_for(std::chrono::duration<double>(config.seconds));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : client_threads) t.join();
  if (chaos_thread.joinable()) chaos_thread.join();

  // Graceful drain must leave nothing unanswered.
  (*server)->Shutdown();
  if ((*server)->in_flight() != 0) {
    ReportViolation(config, &totals, "requests left in flight after drain",
                    "");
  }

  std::fprintf(stderr,
               "serve_soak: seed=%llu sent=%llu responses=%llu ok=%llu "
               "errors=%llu reconnects=%llu violations=%llu\n",
               static_cast<unsigned long long>(config.seed),
               static_cast<unsigned long long>(totals.sent.load()),
               static_cast<unsigned long long>(totals.responses.load()),
               static_cast<unsigned long long>(totals.ok.load()),
               static_cast<unsigned long long>(totals.errors.load()),
               static_cast<unsigned long long>(totals.reconnects.load()),
               static_cast<unsigned long long>(totals.violations.load()));
  if (config.verbose) {
    std::fprintf(stderr, "%s\n", metrics.ToJson().c_str());
  }
  server->reset();
  SetGlobalMetrics(nullptr);
  return totals.violations.load() == 0 ? kExitOk : kExitViolation;
}
