#include "api/optimize_query.h"

#include <utility>

#include "baseline/greedy.h"
#include "common/strings.h"
#include "core/table_arena.h"
#include "obs/metrics.h"
#include "obs/profiler/profiler.h"
#include "obs/trace.h"
#include "plan/algorithm_choice.h"
#include "plan/evaluate.h"
#include "simd/dispatch.h"

namespace blitz {

namespace {

/// Phase timing helper: accumulates into `*slot` only when a report is
/// being collected, so the default path pays no clock reads per phase.
class PhaseTimer {
 public:
  PhaseTimer(bool enabled, double* slot) : slot_(enabled ? slot : nullptr) {}

  ~PhaseTimer() {
    if (slot_ != nullptr) *slot_ += timer_.ElapsedSeconds();
  }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  double* slot_;
  MetricTimer timer_;
};

/// True for the status codes that step the degradation ladder down one
/// tier. Cancellation is deliberately excluded: a caller that cancelled
/// wants the call to stop, not to burn more time in a cheaper tier.
bool IsDegradable(const Status& status) {
  return status.code() == StatusCode::kResourceExhausted ||
         status.code() == StatusCode::kDeadlineExceeded;
}

}  // namespace

const char* OptimizerTierName(OptimizerTier tier) {
  switch (tier) {
    case OptimizerTier::kExhaustive:
      return "exhaustive";
    case OptimizerTier::kHybrid:
      return "hybrid";
    case OptimizerTier::kGreedy:
      return "greedy";
  }
  return "unknown";
}

std::string OptimizedQuery::ReportToString() const {
  if (!report.has_value()) {
    return StrFormat("tier %s (no report collected)", OptimizerTierName(tier));
  }
  const OptimizeReport& r = *report;
  std::string out = StrFormat(
      "total %.3f ms (optimize %.3f, extract %.3f, evaluate %.3f, "
      "attach %.3f); tier %s; simd %s; estimator %s; "
      "peak DP table %llu bytes",
      r.total_seconds * 1e3, r.optimize_seconds * 1e3,
      r.extract_seconds * 1e3, r.evaluate_seconds * 1e3,
      r.attach_seconds * 1e3, OptimizerTierName(tier),
      SimdLevelName(r.simd_level), EstimatorKindName(r.estimator),
      static_cast<unsigned long long>(r.peak_dp_table_bytes));
  if (r.tiers_attempted > 1) {
    out += StrFormat(" (%d tier attempts", r.tiers_attempted);
    for (const std::string& step : r.degradations) out += "; " + step;
    out += ")";
  }
  if (!r.thresholds_tried.empty()) {
    out += "; thresholds";
    for (const float threshold : r.thresholds_tried) {
      out += StrFormat(" %g", static_cast<double>(threshold));
    }
  }
  if (r.counters.loop_iterations > 0) {
    out += "; counts " + r.counters.ToString();
  }
  if (r.profile.has_value() && !r.profile->empty()) {
    out += StrFormat("; dp profile: %.3f ms attributed over %llu pass(es)",
                     r.profile->AttributedSeconds() * 1e3,
                     static_cast<unsigned long long>(r.profile->passes));
  }
  return out;
}

Status QueryOptimizerOptions::Validate() const {
  if (exhaustive_limit < 1) {
    return Status::InvalidArgument("exhaustive_limit must be >= 1");
  }
  if (initial_cost_threshold.has_value() &&
      !(*initial_cost_threshold > 0)) {
    return Status::InvalidArgument(
        "initial_cost_threshold must be positive when set");
  }
  BLITZ_RETURN_IF_ERROR(exhaustive.Validate());
  BLITZ_RETURN_IF_ERROR(hybrid.Validate());
  return parallel.Validate();
}

QueryOptimizerOptions QueryOptimizerOptions::Normalized() const {
  QueryOptimizerOptions out = *this;
  out.exhaustive.cost_model = cost_model;
  out.exhaustive.count_operations = collect_report && count_operations;
  out.exhaustive.budget = budget;
  out.exhaustive.parallel = parallel;
  out.exhaustive.simd = simd;
  out.exhaustive.table_arena = table_arena;
  out.exhaustive.estimator = estimator;
  out.hybrid.cost_model = cost_model;
  out.hybrid.budget = budget;
  out.hybrid.parallel = parallel;
  out.hybrid.simd = simd;
  out.hybrid.estimator = estimator;
  return out;
}

Result<OptimizedQuery> OptimizeQuery(const Catalog& catalog,
                                     const JoinGraph& graph,
                                     const QueryOptimizerOptions& raw_options) {
  if (graph.num_relations() != catalog.num_relations()) {
    return Status::InvalidArgument("catalog/graph relation-count mismatch");
  }
  BLITZ_RETURN_IF_ERROR(raw_options.Validate());
  if (raw_options.estimator != nullptr &&
      raw_options.estimator->num_relations() != catalog.num_relations()) {
    return Status::InvalidArgument(StrFormat(
        "estimator covers %d relations but the catalog has %d",
        raw_options.estimator->num_relations(), catalog.num_relations()));
  }
  QueryOptimizerOptions options = raw_options.Normalized();

  const MetricTimer total_timer;
  TraceSpan span("OptimizeQuery", "api");
  span.AddArg("n", catalog.num_relations());
  // Profiled region for the observatory: nests under the trace span above
  // and accrues wall time + hardware counters when a global Profiler is
  // installed (one atomic load otherwise).
  ProfileScope prof_scope("OptimizeQuery");

  OptimizedQuery result;
  OptimizeReport report;
  // Per-phase DP attribution sink; wired into the exhaustive tier's pass
  // options only when requested (a null sink compiles the hooks out).
  PassProfile dp_profile;
  const bool profile_requested =
      options.collect_report && options.collect_profile;
  if (profile_requested) options.exhaustive.profile = &dp_profile;
  // The per-pass kernel choice: every tier's DP passes share one resolved
  // request, so resolve it once up front (the exhaustive tier re-reports
  // its pass's actual level, which matches — including the flat-ablation,
  // gate-tightness, and minimum-n refinements folded into
  // EffectivePassSimdLevel).
  report.simd_level =
      EffectivePassSimdLevel(options.exhaustive, catalog.num_relations());
  report.estimator = options.estimator != nullptr
                         ? options.estimator->kind()
                         : EstimatorKind::kPaperFanout;

  // The degradation ladder: the natural tier for this problem size first,
  // then each cheaper tier. Budget exhaustion (deadline, memory cap) steps
  // down; cancellation and genuine errors return immediately. Each tier
  // attempt is governed by a fresh copy of the budget — the ladder is what
  // bounds the total, and the last-resort greedy tier is polynomial.
  std::vector<OptimizerTier> ladder;
  if (catalog.num_relations() <= options.exhaustive_limit) {
    ladder.push_back(OptimizerTier::kExhaustive);
  }
  ladder.push_back(OptimizerTier::kHybrid);
  ladder.push_back(OptimizerTier::kGreedy);
  if (!options.degrade_on_budget) ladder.resize(1);

  const auto run_exhaustive = [&]() -> Status {
    Result<OptimizeOutcome> outcome = Status::Internal("unset");
    {
      PhaseTimer phase(options.collect_report, &report.optimize_seconds);
      if (options.initial_cost_threshold.has_value()) {
        ThresholdLadderOptions thresholds;
        thresholds.initial_threshold = *options.initial_cost_threshold;
        Result<LadderOutcome> laddered = OptimizeJoinWithThresholds(
            catalog, graph, options.exhaustive, thresholds);
        if (!laddered.ok()) return laddered.status();
        result.passes = laddered->passes;
        report.thresholds_tried = std::move(laddered->thresholds_tried);
        outcome = std::move(laddered->outcome);
      } else {
        outcome = OptimizeJoin(catalog, graph, options.exhaustive);
        if (!outcome.ok()) return outcome.status();
      }
    }
    report.counters = outcome->counters;
    report.peak_dp_table_bytes = outcome->table.MemoryBytes();
    report.simd_level = outcome->simd_level;
    PhaseTimer phase(options.collect_report, &report.extract_seconds);
    TraceSpan extract_span("extract_plan", "api");
    Result<Plan> plan = Plan::ExtractFromTable(outcome->table);
    if (!plan.ok()) return plan.status();
    result.plan = std::move(plan).value();
    // The table's job is done; recycle its buffers for the next call.
    if (options.table_arena != nullptr) {
      options.table_arena->Release(std::move(outcome->table));
    }
    return Status::OK();
  };

  const auto run_hybrid = [&]() -> Status {
    PhaseTimer phase(options.collect_report, &report.optimize_seconds);
    Result<HybridResult> outcome =
        OptimizeHybrid(catalog, graph, options.hybrid);
    if (!outcome.ok()) return outcome.status();
    result.plan = std::move(outcome->plan);
    return Status::OK();
  };

  const auto run_greedy = [&]() -> Status {
    PhaseTimer phase(options.collect_report, &report.optimize_seconds);
    Result<GreedyResult> outcome =
        OptimizeGreedy(catalog, graph, options.cost_model,
                       GreedyCriterion::kMinOutputCardinality,
                       options.estimator);
    if (!outcome.ok()) return outcome.status();
    result.plan = std::move(outcome->plan);
    return Status::OK();
  };

  for (size_t attempt = 0; attempt < ladder.size(); ++attempt) {
    const OptimizerTier tier = ladder[attempt];
    report.tiers_attempted = static_cast<int>(attempt) + 1;
    Status tier_status;
    switch (tier) {
      case OptimizerTier::kExhaustive:
        tier_status = run_exhaustive();
        break;
      case OptimizerTier::kHybrid:
        tier_status = run_hybrid();
        break;
      case OptimizerTier::kGreedy:
        tier_status = run_greedy();
        break;
    }
    if (tier_status.ok()) {
      result.tier = tier;
      break;
    }
    if (attempt + 1 == ladder.size() || !IsDegradable(tier_status)) {
      return tier_status;
    }
    report.degradations.push_back(
        StrFormat("%s: %s", OptimizerTierName(tier),
                  tier_status.ToString().c_str()));
    if (MetricsRegistry* metrics = GlobalMetrics()) {
      metrics->AddCounter("api.degradations");
    }
  }
  {
    PhaseTimer phase(options.collect_report, &report.evaluate_seconds);
    result.cost =
        EvaluateCost(result.plan, catalog, graph, options.cost_model);
  }
  if (options.attach_algorithms) {
    PhaseTimer phase(options.collect_report, &report.attach_seconds);
    TraceSpan attach_span("choose_algorithms", "api");
    ChooseAlgorithms(&result.plan, catalog, graph, options.cost_model);
  }

  span.AddArg("cost", result.cost);
  span.AddArg("passes", result.passes);
  span.AddArg("tier", static_cast<double>(result.tier));
  if (MetricsRegistry* metrics = GlobalMetrics()) {
    metrics->AddCounter("api.queries");
    metrics->AddCounter(result.exact() ? "api.exhaustive_queries"
                                       : "api.hybrid_queries");
    switch (result.tier) {
      case OptimizerTier::kExhaustive:
        metrics->AddCounter("api.tier_exhaustive");
        break;
      case OptimizerTier::kHybrid:
        metrics->AddCounter("api.tier_hybrid");
        break;
      case OptimizerTier::kGreedy:
        metrics->AddCounter("api.tier_greedy");
        break;
    }
    metrics->RecordLatency("api.query_seconds", total_timer.ElapsedSeconds());
    // Provenance labels: the facts a single --metrics-out artifact needs
    // to tell the whole story of the last query.
    metrics->SetLabel("api.simd_resolved", SimdLevelName(report.simd_level));
    metrics->SetLabel("api.tier", OptimizerTierName(result.tier));
    metrics->SetLabel("api.estimator", EstimatorKindName(report.estimator));
    std::string degradation_log;
    for (const std::string& step : report.degradations) {
      if (!degradation_log.empty()) degradation_log += "; ";
      degradation_log += step;
    }
    metrics->SetLabel("api.degradations", degradation_log);
  }
  if (options.collect_report) {
    report.total_seconds = total_timer.ElapsedSeconds();
    if (profile_requested) report.profile = dp_profile;
    result.report = std::move(report);
  }
  return result;
}

}  // namespace blitz
