// TPC-H-flavored scenario: an 8-relation analytics join over a retail
// schema, exercised end to end through the top-level OptimizeQuery API —
// exhaustive search with a plan-cost threshold, algorithm attachment, and
// an order-aware re-optimization of the sort-merge variant where three
// tables join on the shared part key.

#include <cstdio>

#include "api/interesting_orders.h"
#include "api/optimize_query.h"
#include "catalog/catalog.h"
#include "query/equivalence.h"

int main() {
  using namespace blitz;

  // Scaled-down TPC-H-style statistics.
  Result<Catalog> catalog = Catalog::Create({
      {"region", 5, 32},
      {"nation", 25, 32},
      {"supplier", 10000, 96},
      {"customer", 150000, 128},
      {"orders", 1500000, 96},
      {"lineitem", 6000000, 112},
      {"part", 200000, 96},
      {"partsupp", 800000, 64},
  });
  if (!catalog.ok()) return 1;
  const int region = 0, nation = 1, supplier = 2, customer = 3;
  const int orders = 4, lineitem = 5, part = 6, partsupp = 7;

  JoinSpecBuilder builder(catalog->num_relations());
  builder.AddPredicate(region, nation, 1.0 / 5);
  builder.AddPredicate(nation, supplier, 1.0 / 25);
  builder.AddPredicate(nation, customer, 1.0 / 25);
  builder.AddPredicate(customer, orders, 1.0 / 150000);
  builder.AddPredicate(orders, lineitem, 1.0 / 1500000);
  builder.AddPredicate(supplier, lineitem, 1.0 / 10000);
  // lineitem, part and partsupp share the part key: a closed equivalence.
  builder.AddEquivalenceClass({lineitem, part, partsupp},
                              {200000, 200000, 200000});
  Result<JoinGraph> graph = builder.Build();
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }

  std::printf("join graph: %s\n\n", graph->ToString().c_str());

  // 1. One-call optimization under the multi-algorithm cost model, with a
  //    Section 6.4 threshold ladder.
  QueryOptimizerOptions options;
  options.cost_model = CostModelKind::kMinAll;
  options.initial_cost_threshold = 1e8f;
  Result<OptimizedQuery> optimized =
      OptimizeQuery(*catalog, *graph, options);
  if (!optimized.ok()) {
    std::fprintf(stderr, "%s\n", optimized.status().ToString().c_str());
    return 1;
  }
  std::printf("=== min(sm,dnl,hash) plan (%s, %d pass%s) ===\n%s",
              optimized->exact() ? "exact" : "hybrid", optimized->passes,
              optimized->passes == 1 ? "" : "es",
              optimized->plan.ToTreeString(&catalog.value()).c_str());
  std::printf("cost %.4g, shape: %s\n\n", optimized->cost,
              optimized->plan.IsLeftDeep() ? "left-deep" : "bushy");

  // 2. Order-aware sort-merge optimization: lineitem/part/partsupp all
  //    join on the part key (class of the equivalence's predicates).
  //    Predicates from the equivalence closure share one attribute class;
  //    the six foreign-key predicates keep their own.
  std::vector<int> classes;
  int next_class = 0;
  for (const Predicate& p : graph->predicates()) {
    const bool part_key =
        (p.lhs == lineitem || p.lhs == part || p.lhs == partsupp) &&
        (p.rhs == lineitem || p.rhs == part || p.rhs == partsupp);
    classes.push_back(part_key ? 99 : next_class++);
  }
  // Densify: map 99 -> next_class.
  for (int& c : classes) {
    if (c == 99) c = next_class;
  }
  Result<InterestingOrdersResult> ordered =
      OptimizeWithInterestingOrders(*catalog, *graph, classes);
  if (!ordered.ok()) {
    std::fprintf(stderr, "%s\n", ordered.status().ToString().c_str());
    return 1;
  }
  std::printf("=== order-aware sort-merge plan ===\n%s",
              ordered->plan.ToTreeString(&catalog.value()).c_str());
  std::printf("cost %.4g, sorts avoided through order reuse: %d\n%s",
              static_cast<double>(ordered->cost), ordered->sorts_avoided,
              ordered->explain.c_str());
  return 0;
}
