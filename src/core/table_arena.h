#ifndef BLITZ_CORE_TABLE_ARENA_H_
#define BLITZ_CORE_TABLE_ARENA_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <tuple>
#include <vector>

#include "common/status.h"
#include "core/dp_table.h"

namespace blitz {

/// A pool of DP tables reused across optimizer calls, keyed by table shape
/// (n, with_pi_fan, with_aux). At serving rates the 2^n column allocation is
/// a measurable fraction of a small-n optimization, and releasing every
/// table back to the allocator churns it under sustained load; the arena
/// turns the steady state into a lookup plus a move.
///
/// Reuse is sound because a blitzsplit pass writes every row of every column
/// it reads (rank k rows are computed from rank < k rows, base ranks from
/// the catalog), so a recycled table's stale contents are never observed —
/// the same property ReoptimizeJoinInPlace relies on, and the property the
/// arena test pins down bit-for-bit against a fresh-table run.
///
/// Thread-safe: one arena serves every worker of a multi-tenant server.
/// Retention is bounded by max_retained_bytes; Release drops tables beyond
/// the cap instead of growing without bound. Acquire honors the
/// serve.arena.alloc fault point (kBadAlloc / kFailStatus) so allocation
/// failure under load is a testable path.
class DpTableArena {
 public:
  struct Options {
    /// Byte budget for idle pooled tables (live, handed-out tables are not
    /// counted — their owner's admission control governs those).
    std::uint64_t max_retained_bytes = 256ull << 20;
  };

  struct Stats {
    std::uint64_t hits = 0;        ///< Acquire served from the pool.
    std::uint64_t misses = 0;      ///< Acquire fell through to Create.
    std::uint64_t discarded = 0;   ///< Release over the retention cap.
    std::uint64_t retained_bytes = 0;
    std::uint64_t retained_tables = 0;
  };

  DpTableArena() = default;
  explicit DpTableArena(const Options& options) : options_(options) {}

  DpTableArena(const DpTableArena&) = delete;
  DpTableArena& operator=(const DpTableArena&) = delete;

  /// A table of exactly the requested shape: pooled if one is available,
  /// freshly created otherwise. Errors only on invalid shape or an armed
  /// serve.arena.alloc fault.
  Result<DpTable> Acquire(int n, bool with_pi_fan, bool with_aux);

  /// Returns a table to the pool (or drops it when the retention cap is
  /// reached). Empty (default-constructed) tables are ignored.
  void Release(DpTable table);

  /// Drops every pooled table.
  void Clear();

  Stats stats() const;

 private:
  using ShapeKey = std::tuple<int, bool, bool>;

  Options options_;
  mutable std::mutex mu_;
  std::map<ShapeKey, std::vector<DpTable>> pool_;
  Stats stats_;
};

}  // namespace blitz

#endif  // BLITZ_CORE_TABLE_ARENA_H_
