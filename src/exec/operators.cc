#include "exec/operators.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"

namespace blitz {

RowSet ScanTable(const ExecTable& table) {
  RowSet out;
  out.relations = RelSet::Singleton(table.relation_index());
  out.rows.reserve(table.num_rows());
  for (std::uint32_t i = 0; i < table.num_rows(); ++i) {
    out.rows.push_back({i});
  }
  return out;
}

std::vector<BoundPredicate> BindSpanningPredicates(const JoinGraph& graph,
                                                   RelSet lhs, RelSet rhs) {
  BLITZ_DCHECK(!lhs.Intersects(rhs));
  std::vector<BoundPredicate> bound;
  const auto& predicates = graph.predicates();
  for (int p = 0; p < static_cast<int>(predicates.size()); ++p) {
    const Predicate& predicate = predicates[p];
    if (lhs.Contains(predicate.lhs) && rhs.Contains(predicate.rhs)) {
      bound.push_back({p, predicate.lhs, predicate.rhs});
    } else if (lhs.Contains(predicate.rhs) && rhs.Contains(predicate.lhs)) {
      bound.push_back({p, predicate.rhs, predicate.lhs});
    }
  }
  return bound;
}

namespace {

/// Key of row `row` of `side` under predicate `bp` (side-specific endpoint).
std::uint32_t KeyOf(const RowSet& side, const std::vector<std::uint32_t>& row,
                    int relation, int predicate_id,
                    const std::vector<ExecTable>& tables) {
  const int slot = side.SlotOf(relation);
  return tables[relation].Column(predicate_id)[row[slot]];
}

/// True if the (lhs_row, rhs_row) pair satisfies predicates[begin..].
bool VerifyRest(const RowSet& lhs, const RowSet& rhs,
                const std::vector<std::uint32_t>& lhs_row,
                const std::vector<std::uint32_t>& rhs_row,
                const std::vector<BoundPredicate>& predicates, size_t begin,
                const std::vector<ExecTable>& tables) {
  for (size_t i = begin; i < predicates.size(); ++i) {
    const BoundPredicate& bp = predicates[i];
    if (KeyOf(lhs, lhs_row, bp.lhs_relation, bp.predicate_id, tables) !=
        KeyOf(rhs, rhs_row, bp.rhs_relation, bp.predicate_id, tables)) {
      return false;
    }
  }
  return true;
}

std::vector<std::uint32_t> Concatenate(const RowSet& lhs, const RowSet& rhs,
                                       const std::vector<std::uint32_t>& a,
                                       const std::vector<std::uint32_t>& b,
                                       RelSet out_relations) {
  // Merge the two rows so slots stay in ascending relation order.
  std::vector<std::uint32_t> merged(out_relations.size());
  int out_slot = 0;
  out_relations.ForEach([&](int r) {
    if (lhs.relations.Contains(r)) {
      merged[out_slot] = a[lhs.SlotOf(r)];
    } else {
      merged[out_slot] = b[rhs.SlotOf(r)];
    }
    ++out_slot;
  });
  return merged;
}

RowSet NestedLoopsJoin(const RowSet& lhs, const RowSet& rhs,
                       const std::vector<BoundPredicate>& predicates,
                       const std::vector<ExecTable>& tables) {
  RowSet out;
  out.relations = lhs.relations | rhs.relations;
  for (const auto& a : lhs.rows) {
    for (const auto& b : rhs.rows) {
      if (VerifyRest(lhs, rhs, a, b, predicates, 0, tables)) {
        out.rows.push_back(Concatenate(lhs, rhs, a, b, out.relations));
      }
    }
  }
  return out;
}

RowSet HashJoin(const RowSet& lhs, const RowSet& rhs,
                const std::vector<BoundPredicate>& predicates,
                const std::vector<ExecTable>& tables) {
  BLITZ_CHECK(!predicates.empty());
  RowSet out;
  out.relations = lhs.relations | rhs.relations;
  const BoundPredicate& key = predicates[0];
  // Build on the smaller input.
  const bool build_left = lhs.num_rows() <= rhs.num_rows();
  const RowSet& build = build_left ? lhs : rhs;
  const RowSet& probe = build_left ? rhs : lhs;
  const int build_rel = build_left ? key.lhs_relation : key.rhs_relation;
  const int probe_rel = build_left ? key.rhs_relation : key.lhs_relation;

  std::unordered_multimap<std::uint32_t, const std::vector<std::uint32_t>*>
      hash_table;
  hash_table.reserve(build.rows.size());
  for (const auto& row : build.rows) {
    hash_table.emplace(KeyOf(build, row, build_rel, key.predicate_id, tables),
                       &row);
  }
  for (const auto& probe_row : probe.rows) {
    const std::uint32_t k =
        KeyOf(probe, probe_row, probe_rel, key.predicate_id, tables);
    auto [begin, end] = hash_table.equal_range(k);
    for (auto it = begin; it != end; ++it) {
      const auto& build_row = *it->second;
      const auto& lhs_row = build_left ? build_row : probe_row;
      const auto& rhs_row = build_left ? probe_row : build_row;
      if (VerifyRest(lhs, rhs, lhs_row, rhs_row, predicates, 1, tables)) {
        out.rows.push_back(
            Concatenate(lhs, rhs, lhs_row, rhs_row, out.relations));
      }
    }
  }
  return out;
}

RowSet SortMergeJoin(const RowSet& lhs, const RowSet& rhs,
                     const std::vector<BoundPredicate>& predicates,
                     const std::vector<ExecTable>& tables) {
  BLITZ_CHECK(!predicates.empty());
  RowSet out;
  out.relations = lhs.relations | rhs.relations;
  const BoundPredicate& key = predicates[0];

  auto sorted_indexes = [&](const RowSet& side, int relation) {
    std::vector<std::uint32_t> order(side.rows.size());
    for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::uint32_t a,
                                              std::uint32_t b) {
      return KeyOf(side, side.rows[a], relation, key.predicate_id, tables) <
             KeyOf(side, side.rows[b], relation, key.predicate_id, tables);
    });
    return order;
  };
  const std::vector<std::uint32_t> lhs_order =
      sorted_indexes(lhs, key.lhs_relation);
  const std::vector<std::uint32_t> rhs_order =
      sorted_indexes(rhs, key.rhs_relation);

  size_t i = 0;
  size_t j = 0;
  while (i < lhs_order.size() && j < rhs_order.size()) {
    const std::uint32_t lk = KeyOf(lhs, lhs.rows[lhs_order[i]],
                                   key.lhs_relation, key.predicate_id, tables);
    const std::uint32_t rk = KeyOf(rhs, rhs.rows[rhs_order[j]],
                                   key.rhs_relation, key.predicate_id, tables);
    if (lk < rk) {
      ++i;
    } else if (lk > rk) {
      ++j;
    } else {
      // Equal-key runs on both sides; emit their cross product.
      size_t i_end = i;
      while (i_end < lhs_order.size() &&
             KeyOf(lhs, lhs.rows[lhs_order[i_end]], key.lhs_relation,
                   key.predicate_id, tables) == lk) {
        ++i_end;
      }
      size_t j_end = j;
      while (j_end < rhs_order.size() &&
             KeyOf(rhs, rhs.rows[rhs_order[j_end]], key.rhs_relation,
                   key.predicate_id, tables) == rk) {
        ++j_end;
      }
      for (size_t a = i; a < i_end; ++a) {
        for (size_t b = j; b < j_end; ++b) {
          const auto& lhs_row = lhs.rows[lhs_order[a]];
          const auto& rhs_row = rhs.rows[rhs_order[b]];
          if (VerifyRest(lhs, rhs, lhs_row, rhs_row, predicates, 1, tables)) {
            out.rows.push_back(
                Concatenate(lhs, rhs, lhs_row, rhs_row, out.relations));
          }
        }
      }
      i = i_end;
      j = j_end;
    }
  }
  return out;
}

}  // namespace

RowSet JoinRowSets(const RowSet& lhs, const RowSet& rhs,
                   const std::vector<BoundPredicate>& predicates,
                   JoinAlgorithm algorithm,
                   const std::vector<ExecTable>& tables) {
  BLITZ_CHECK(!lhs.relations.Intersects(rhs.relations));
  switch (algorithm) {
    case JoinAlgorithm::kCartesianProduct:
      BLITZ_CHECK(predicates.empty());
      return NestedLoopsJoin(lhs, rhs, predicates, tables);
    case JoinAlgorithm::kNestedLoops:
      return NestedLoopsJoin(lhs, rhs, predicates, tables);
    case JoinAlgorithm::kHash:
      return HashJoin(lhs, rhs, predicates, tables);
    case JoinAlgorithm::kSortMerge:
      return SortMergeJoin(lhs, rhs, predicates, tables);
    case JoinAlgorithm::kUnspecified:
      return predicates.empty() ? NestedLoopsJoin(lhs, rhs, predicates, tables)
                                : HashJoin(lhs, rhs, predicates, tables);
  }
  BLITZ_CHECK(false && "unknown algorithm");
  return RowSet{};
}

}  // namespace blitz
