file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_closeups.dir/bench_fig5_closeups.cc.o"
  "CMakeFiles/bench_fig5_closeups.dir/bench_fig5_closeups.cc.o.d"
  "bench_fig5_closeups"
  "bench_fig5_closeups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_closeups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
