# Empty dependencies file for bench_ablation_nestedif.
# This may be replaced when dependencies are built.
