// Extension bench (the Section 6.5 open problem implemented for the
// sort-merge special case): plain kappa_sm optimization vs the order-aware
// DP that reuses sort orders across merges on the same attribute class.
// Workloads are stars and chains joined through a single closed column
// equivalence (the setting where interesting orders matter most).
//
// Environment knobs: BLITZ_BENCH_MIN_SECONDS (default 0.05),
// BLITZ_ORDERS_MAX_N (default 12).

#include <cstdio>
#include <vector>

#include "api/interesting_orders.h"
#include "benchlib/table_out.h"
#include "benchlib/timing.h"
#include "common/strings.h"
#include "core/optimizer.h"
#include "query/equivalence.h"

namespace blitz {
namespace {

struct Scenario {
  const char* name;
  Catalog catalog;
  JoinGraph graph;
  std::vector<int> classes;
};

Result<Scenario> MakeSharedKeyScenario(const char* name, int n,
                                       double card, double distinct) {
  Result<Catalog> catalog =
      Catalog::FromCardinalities(std::vector<double>(n, card));
  if (!catalog.ok()) return catalog.status();
  JoinSpecBuilder builder(n);
  std::vector<int> members(n);
  std::vector<double> distinct_counts(n, distinct);
  for (int i = 0; i < n; ++i) members[i] = i;
  BLITZ_RETURN_IF_ERROR(
      builder.AddEquivalenceClass(members, distinct_counts));
  Result<JoinGraph> graph = builder.Build();
  if (!graph.ok()) return graph.status();
  std::vector<int> classes(graph->num_predicates(), 0);
  return Scenario{name, std::move(catalog).value(),
                  std::move(graph).value(), std::move(classes)};
}

int Run() {
  const double min_seconds = BenchMinSeconds(0.05);
  const int max_n = BenchEnvInt("BLITZ_ORDERS_MAX_N", 12);
  std::printf(
      "Interesting-orders extension: plain kappa_sm vs order-aware DP\n"
      "(all relations joined through one shared attribute class)\n\n");

  TextTable out;
  out.SetHeader({"n", "plain cost", "order-aware", "saving", "sorts avoided",
                 "plain (ms)", "order-aware (ms)"});

  for (int n = 4; n <= max_n; n += 2) {
    Result<Scenario> scenario =
        MakeSharedKeyScenario("shared-key", n, 10000, 500);
    if (!scenario.ok()) continue;

    OptimizerOptions plain_options;
    plain_options.cost_model = CostModelKind::kSortMerge;
    float plain_cost = 0;
    const TimingResult plain_time = TimeIt(
        [&] {
          Result<OptimizeOutcome> outcome = OptimizeJoin(
              scenario->catalog, scenario->graph, plain_options);
          if (outcome.ok()) plain_cost = outcome->cost;
        },
        min_seconds);

    float aware_cost = 0;
    int sorts_avoided = 0;
    const TimingResult aware_time = TimeIt(
        [&] {
          Result<InterestingOrdersResult> result =
              OptimizeWithInterestingOrders(scenario->catalog,
                                            scenario->graph,
                                            scenario->classes);
          if (result.ok()) {
            aware_cost = result->cost;
            sorts_avoided = result->sorts_avoided;
          }
        },
        min_seconds);

    out.AddRow({StrFormat("%d", n), StrFormat("%.0f", plain_cost),
                StrFormat("%.0f", aware_cost),
                StrFormat("%.1f%%", 100.0 * (1 - aware_cost / plain_cost)),
                StrFormat("%d", sorts_avoided),
                StrFormat("%.2f", plain_time.seconds_per_run * 1e3),
                StrFormat("%.2f", aware_time.seconds_per_run * 1e3)});
  }
  std::printf("%s\n", out.ToString().c_str());
  std::printf(
      "Reading: the order-aware optimum avoids ~n-2 of the n sorts a plain\n"
      "kappa_sm plan pays when every join shares one key; the DP costs a\n"
      "(classes+1)x larger table and proportional extra time.\n");
  return 0;
}

}  // namespace
}  // namespace blitz

int main() { return blitz::Run(); }
