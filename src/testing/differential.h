#ifndef BLITZ_TESTING_DIFFERENTIAL_H_
#define BLITZ_TESTING_DIFFERENTIAL_H_

#include <string>
#include <vector>

#include "card/estimator.h"
#include "cost/cost_model.h"
#include "simd/dispatch.h"
#include "testing/fuzzer.h"

namespace blitz::fuzz {

/// The configuration cross-product one case is driven through. The
/// reference configuration (scalar kernel, one thread, no threshold) is
/// always run per cost model; every other (threads x simd) combination must
/// fill a bit-identical DP table, and the threshold ladder must land on the
/// bit-identical root cost.
struct DifferentialOptions {
  std::vector<CostModelKind> cost_models = {CostModelKind::kNaive,
                                            CostModelKind::kSortMerge,
                                            CostModelKind::kDiskNestedLoops};
  std::vector<int> thread_counts = {1, 4};
  /// kScalar is the reference; kBlock forces the batched kernel on every
  /// model; kAuto exercises the production dispatch policy.
  std::vector<SimdLevel> simd_levels = {SimdLevel::kScalar, SimdLevel::kBlock,
                                        SimdLevel::kAuto};
  /// Run the Section 6.4 threshold ladder (the {threshold on} half of the
  /// grid) and a single thresholded pass checked against the brute-force
  /// oracle's threshold semantics.
  bool with_thresholds = true;
  /// Largest n the O(4^n)-flavored brute-force oracle runs at; larger cases
  /// still get the re-coster and DPccp oracles.
  int brute_force_max_n = 12;
  /// Estimator seam sweep (fuzz_blitzsplit --estimators=). kPaperFanout is
  /// exact, so its run must reproduce the estimator-less reference DP table
  /// and counters bit for bit; non-exact kinds (hist, noest) take the
  /// preloaded-card path and are held to valid-plan invariants instead: the
  /// run succeeds, the plan covers every relation, and its cost under the
  /// *true* statistics is positive and finite. Empty disables the leg.
  std::vector<EstimatorKind> estimators = {EstimatorKind::kPaperFanout};
  /// Plan-cache reuse leg (fuzz_blitzsplit --no-plan-cache to disable):
  /// the case is driven through a serving-tier PlanCache cold, warm, and
  /// again after a forced LRU eviction. All three answers must be
  /// bit-identical — plan text, cost bits, tier, passes, and the Section
  /// 3.3 counters — and the warm answer must actually come from the cache.
  bool with_plan_cache = true;
};

/// The outcome of one case: pass, or the first failing check with the
/// configuration that produced it.
struct CaseVerdict {
  bool passed = true;
  std::string config;   ///< e.g. "model=sm threads=4 simd=auto".
  std::string failure;  ///< Oracle/driver message; empty when passed.

  std::string ToString() const;
};

/// Drives one case through every configuration and all applicable oracles.
CaseVerdict RunDifferentialCase(const FuzzCase& c,
                                const DifferentialOptions& options);

}  // namespace blitz::fuzz

#endif  // BLITZ_TESTING_DIFFERENTIAL_H_
