#include "card/histogram.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "card/fanout.h"
#include "common/check.h"

namespace blitz {

EquiDepthHistogram EquiDepthHistogram::Build(
    const std::vector<std::uint32_t>& column, int num_buckets) {
  BLITZ_CHECK(num_buckets >= 1);
  EquiDepthHistogram hist;
  if (column.empty()) return hist;

  std::vector<std::uint32_t> sorted = column;
  std::sort(sorted.begin(), sorted.end());
  hist.rows_ = static_cast<double>(sorted.size());
  hist.min_value_ = sorted.front();
  hist.max_value_ = sorted.back();

  const double target_depth =
      std::ceil(hist.rows_ / static_cast<double>(num_buckets));
  std::size_t i = 0;
  while (i < sorted.size()) {
    Bucket bucket;
    bucket.lo = sorted[i];
    while (i < sorted.size()) {
      // Consume one whole value-run so equal values never straddle buckets.
      const std::uint32_t value = sorted[i];
      std::size_t run_end = i;
      while (run_end < sorted.size() && sorted[run_end] == value) ++run_end;
      bucket.hi = value;
      bucket.rows += static_cast<double>(run_end - i);
      bucket.distinct += 1;
      i = run_end;
      if (bucket.rows >= target_depth) break;
    }
    hist.distinct_ += bucket.distinct;
    hist.buckets_.push_back(bucket);
  }
  return hist;
}

namespace {

/// Inclusive width of a value range as a double (avoids uint32 overflow on
/// the full domain).
double RangeWidth(std::uint32_t lo, std::uint32_t hi) {
  return static_cast<double>(hi) - static_cast<double>(lo) + 1.0;
}

/// Fraction of bucket `b` (by uniform value-space interpolation) covered by
/// the inclusive query range [lo, hi]. 0 when disjoint, 1 when contained.
double BucketCoverage(const EquiDepthHistogram::Bucket& b, std::uint32_t lo,
                      std::uint32_t hi) {
  if (hi < b.lo || lo > b.hi) return 0.0;
  const std::uint32_t olo = std::max(lo, b.lo);
  const std::uint32_t ohi = std::min(hi, b.hi);
  if (olo <= b.lo && ohi >= b.hi) return 1.0;
  return RangeWidth(olo, ohi) / RangeWidth(b.lo, b.hi);
}

}  // namespace

double EquiDepthHistogram::FractionInRange(std::uint32_t lo,
                                           std::uint32_t hi) const {
  if (empty() || hi < lo) return 0.0;
  double covered = 0.0;
  for (const Bucket& b : buckets_) covered += b.rows * BucketCoverage(b, lo, hi);
  return covered / rows_;
}

double EquiDepthHistogram::DistinctInRange(std::uint32_t lo,
                                           std::uint32_t hi) const {
  if (empty() || hi < lo) return 0.0;
  double covered = 0.0;
  for (const Bucket& b : buckets_) {
    covered += b.distinct * BucketCoverage(b, lo, hi);
  }
  return covered;
}

double EstimateEquiJoinSelectivity(const EquiDepthHistogram& a,
                                   const EquiDepthHistogram& b) {
  if (a.empty() || b.empty()) return kMinJoinSelectivity;
  const std::uint32_t lo = std::max(a.min_value(), b.min_value());
  const std::uint32_t hi = std::min(a.max_value(), b.max_value());
  if (lo > hi) return kMinJoinSelectivity;  // Disjoint key ranges.
  const double frac_a = a.FractionInRange(lo, hi);
  const double frac_b = b.FractionInRange(lo, hi);
  const double d =
      std::max({a.DistinctInRange(lo, hi), b.DistinctInRange(lo, hi), 1.0});
  const double sel = frac_a * frac_b / d;
  if (!(sel > kMinJoinSelectivity)) return kMinJoinSelectivity;
  return std::min(sel, 1.0);
}

SampleHistogramEstimator::SampleHistogramEstimator(
    const JoinGraph& graph, std::vector<double> rows,
    std::vector<double> edge_selectivities)
    : est_graph_(graph.num_relations()), rows_(std::move(rows)) {
  BLITZ_CHECK(static_cast<int>(rows_.size()) == graph.num_relations());
  BLITZ_CHECK(edge_selectivities.size() == graph.predicates().size());
  for (double& r : rows_) {
    if (!(r >= 1.0) || !std::isfinite(r)) r = 1.0;
  }
  for (std::size_t k = 0; k < edge_selectivities.size(); ++k) {
    const Predicate& p = graph.predicates()[k];
    double sel = edge_selectivities[k];
    if (!(sel > kMinJoinSelectivity) || !std::isfinite(sel)) {
      sel = kMinJoinSelectivity;
    }
    sel = std::min(sel, 1.0);
    BLITZ_CHECK(est_graph_.AddPredicate(p.lhs, p.rhs, sel).ok());
  }
}

double SampleHistogramEstimator::EstimateCardinality(RelSet s) const {
  return FanoutJoinCardinality(est_graph_, s, rows_);
}

void SampleHistogramEstimator::EstimateAll(std::vector<double>* cards) const {
  FanoutComputeAllCardinalities(est_graph_, rows_, cards);
}

}  // namespace blitz
