# Empty compiler generated dependencies file for bench_ablation_leftdeep.
# This may be replaced when dependencies are built.
