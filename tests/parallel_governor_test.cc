// Governor-under-parallelism: deadline expiry, cancellation, and injected
// faults must abort all workers of a rank-parallel pass promptly, surface
// the right status through the usual entry points, and leave the DP table
// reusable — with every cross-thread interaction clean under TSan.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "api/optimize_query.h"
#include "core/optimizer.h"
#include "governor/budget.h"
#include "governor/faultpoints.h"
#include "test_util.h"

namespace blitz {
namespace {

/// Options that force the rank driver on mid-size problems with chunks
/// large enough (> GovernorState::kCheckStride subsets) that worker-side
/// governor checks actually fire.
OptimizerOptions ForcedParallel(int threads = 4) {
  OptimizerOptions options;
  options.parallel.num_threads = threads;
  options.parallel.min_parallel_rank = 4;
  return options;
}

TEST(ParallelValidateTest, RejectsBadKnobs) {
  const Catalog catalog = testing::Table1Catalog();
  const JoinGraph graph = testing::Figure3Graph();

  OptimizerOptions negative;
  negative.parallel.num_threads = -1;
  Result<OptimizeOutcome> r1 = OptimizeJoin(catalog, graph, negative);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kInvalidArgument);

  OptimizerOptions huge;
  huge.parallel.num_threads = ParallelOptimizerOptions::kMaxNumThreads + 1;
  EXPECT_FALSE(OptimizeJoin(catalog, graph, huge).ok());

  OptimizerOptions zero_rank;
  zero_rank.parallel.min_parallel_rank = 0;
  EXPECT_FALSE(OptimizeCartesian(catalog, zero_rank).ok());

  OptimizerOptions bad_threshold;
  bad_threshold.cost_threshold = -1.0f;
  EXPECT_FALSE(OptimizeJoin(catalog, graph, bad_threshold).ok());
}

TEST(ParallelGovernorTest, PreCancelledTokenFailsFastOnParallelPath) {
  const testing::RandomInstance instance =
      testing::MakeRandomInstance(14, /*seed=*/3);
  CancellationToken token;
  token.Cancel();
  OptimizerOptions options = ForcedParallel();
  options.budget.cancellation = &token;
  Result<OptimizeOutcome> outcome =
      OptimizeJoin(instance.catalog, instance.graph, options);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kCancelled);
}

TEST(ParallelGovernorTest, ConcurrentCancellationAbortsWorkers) {
  // A real canceller thread flips the token while the rank-parallel pass is
  // in flight; the workers' amortized checks must observe it and the pass
  // must return kCancelled (or, if the pass wins the race outright, a
  // complete result — accept both, require one).
  const testing::RandomInstance instance =
      testing::MakeRandomInstance(15, /*seed=*/5);
  CancellationToken token;
  OptimizerOptions options = ForcedParallel();
  options.budget.cancellation = &token;
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    token.Cancel();
  });
  Result<OptimizeOutcome> outcome =
      OptimizeJoin(instance.catalog, instance.graph, options);
  canceller.join();
  if (!outcome.ok()) {
    EXPECT_EQ(outcome.status().code(), StatusCode::kCancelled);
  }
}

TEST(ParallelGovernorTest, InjectedDeadlineExpiryMidRankAbortsPass) {
  if (!kFaultInjectionCompiled) {
    GTEST_SKIP() << "fault injection compiled out";
  }
  FaultRegistry registry;
  ScopedFaultRegistry scoped(&registry);
  // Hit 0 is the entry gate's check; the skew then fires at the first
  // amortized in-loop check — inside a worker's chunk-local governor —
  // jumping its clock hours past the generous deadline.
  FaultSpec skew;
  skew.kind = FaultKind::kClockSkew;
  skew.skew_seconds = 7200;
  skew.after = 1;
  registry.Arm(kFaultGovernorCheck, skew);

  const testing::RandomInstance instance =
      testing::MakeRandomInstance(15, /*seed=*/9);
  OptimizerOptions options = ForcedParallel();
  options.budget.deadline_seconds = 3600;
  Result<OptimizeOutcome> outcome =
      OptimizeJoin(instance.catalog, instance.graph, options);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kDeadlineExceeded);
  // The entry check plus at least one in-loop check actually ran.
  EXPECT_GE(registry.hits(kFaultGovernorCheck), 2u);
}

TEST(ParallelGovernorTest, InjectedCancellationMidRankAbortsPass) {
  if (!kFaultInjectionCompiled) {
    GTEST_SKIP() << "fault injection compiled out";
  }
  FaultRegistry registry;
  ScopedFaultRegistry scoped(&registry);
  FaultSpec cancel;
  cancel.kind = FaultKind::kCancel;
  cancel.after = 1;
  registry.Arm(kFaultGovernorCheck, cancel);

  const std::vector<double> cards(15, 50.0);
  Result<Catalog> catalog = Catalog::FromCardinalities(cards);
  ASSERT_TRUE(catalog.ok());
  OptimizerOptions options = ForcedParallel();
  options.budget.deadline_seconds = 3600;  // arms the governor
  Result<OptimizeOutcome> outcome = OptimizeCartesian(*catalog, options);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kCancelled);
}

TEST(ParallelGovernorTest, InjectedErrorStatusPropagatesFirstErrorWins) {
  if (!kFaultInjectionCompiled) {
    GTEST_SKIP() << "fault injection compiled out";
  }
  FaultRegistry registry;
  ScopedFaultRegistry scoped(&registry);
  FaultSpec fail;
  fail.kind = FaultKind::kFailStatus;
  fail.status = Status::Internal("worker fault for test");
  fail.after = 1;
  fail.times = -1;  // every subsequent check fails; first one must win
  registry.Arm(kFaultGovernorCheck, fail);

  // 4 threads, not more: a chunk must span at least kCheckStride subsets
  // for its worker to reach an amortized check (C(15,7)/4 ≈ 1609 > 1024).
  const testing::RandomInstance instance =
      testing::MakeRandomInstance(15, /*seed=*/13);
  OptimizerOptions options = ForcedParallel(4);
  options.budget.deadline_seconds = 3600;
  Result<OptimizeOutcome> outcome =
      OptimizeJoin(instance.catalog, instance.graph, options);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInternal);
  EXPECT_NE(outcome.status().message().find("worker fault"),
            std::string::npos);
}

TEST(ParallelGovernorTest, AbortedParallelPassLeavesTableReusable) {
  if (!kFaultInjectionCompiled) {
    GTEST_SKIP() << "fault injection compiled out";
  }
  const testing::RandomInstance instance =
      testing::MakeRandomInstance(15, /*seed=*/21);
  Result<OptimizeOutcome> clean =
      OptimizeJoin(instance.catalog, instance.graph, ForcedParallel());
  ASSERT_TRUE(clean.ok());
  const float clean_cost = clean->cost;

  {
    FaultRegistry registry;
    ScopedFaultRegistry scoped(&registry);
    FaultSpec cancel;
    cancel.kind = FaultKind::kCancel;
    cancel.after = 1;
    registry.Arm(kFaultGovernorCheck, cancel);
    OptimizerOptions governed = ForcedParallel();
    governed.budget.deadline_seconds = 3600;
    Result<float> aborted = ReoptimizeJoinInPlace(
        instance.catalog, instance.graph, governed, &clean->table, nullptr);
    ASSERT_FALSE(aborted.ok());
    EXPECT_EQ(aborted.status().code(), StatusCode::kCancelled);
  }

  // The abort left some ranks rewritten and some stale; a clean in-place
  // pass — parallel or sequential — must reproduce the optimum exactly.
  Result<float> reparallel = ReoptimizeJoinInPlace(
      instance.catalog, instance.graph, ForcedParallel(), &clean->table,
      nullptr);
  ASSERT_TRUE(reparallel.ok());
  EXPECT_EQ(*reparallel, clean_cost);

  Result<float> resequential = ReoptimizeJoinInPlace(
      instance.catalog, instance.graph, OptimizerOptions{}, &clean->table,
      nullptr);
  ASSERT_TRUE(resequential.ok());
  EXPECT_EQ(*resequential, clean_cost);
}

TEST(ParallelGovernorTest, MemoryAdmissionStillGovernsParallelPasses) {
  const testing::RandomInstance instance =
      testing::MakeRandomInstance(14, /*seed=*/2);
  OptimizerOptions options = ForcedParallel();
  options.budget.max_dp_table_bytes = 1024;
  Result<OptimizeOutcome> outcome =
      OptimizeJoin(instance.catalog, instance.graph, options);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kResourceExhausted);
}

TEST(ParallelGovernorTest, ClockSkewAtRankBarrierUnwindsEveryWorker) {
  if (!kFaultInjectionCompiled) {
    GTEST_SKIP() << "fault injection compiled out";
  }
  // Unlike the bounded mid-rank skew above, this arms the skew on *every*
  // governor check (times = -1): whichever worker checks first trips the
  // deadline, and every other worker — racing its own skewed check against
  // the abort flag — must reach the same kDeadlineExceeded verdict either
  // way. The rank barrier then has exactly one status to adopt.
  FaultRegistry registry;
  ScopedFaultRegistry scoped(&registry);
  FaultSpec skew;
  skew.kind = FaultKind::kClockSkew;
  skew.skew_seconds = 7200;
  skew.after = 1;   // Let the entry gate pass; fire from the rank loop on.
  skew.times = -1;  // Every check from then on, in every worker.
  registry.Arm(kFaultGovernorCheck, skew);

  const testing::RandomInstance instance =
      testing::MakeRandomInstance(15, /*seed=*/21);
  OptimizerOptions options = ForcedParallel(4);
  options.budget.deadline_seconds = 3600;
  Result<OptimizeOutcome> outcome =
      OptimizeJoin(instance.catalog, instance.graph, options);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(registry.hits(kFaultGovernorCheck), 2u);
}

TEST(ParallelGovernorTest, ClockSkewDegradationReportStaysConsistent) {
  if (!kFaultInjectionCompiled) {
    GTEST_SKIP() << "fault injection compiled out";
  }
  // The same always-on skew through the OptimizeQuery facade with
  // degradation enabled: the parallel exhaustive pass and the hybrid
  // fallback both unwind with kDeadlineExceeded, the greedy tier (which
  // answers regardless of budget) lands the plan, and the OptimizeReport
  // must tell that exact story — one degradation entry per abandoned tier,
  // each naming the deadline as the cause.
  FaultRegistry registry;
  ScopedFaultRegistry scoped(&registry);
  FaultSpec skew;
  skew.kind = FaultKind::kClockSkew;
  skew.skew_seconds = 7200;
  skew.after = 1;
  skew.times = -1;
  registry.Arm(kFaultGovernorCheck, skew);

  const testing::RandomInstance instance =
      testing::MakeRandomInstance(15, /*seed=*/21);
  QueryOptimizerOptions options;
  options.parallel.num_threads = 4;
  options.parallel.min_parallel_rank = 4;
  options.budget.deadline_seconds = 3600;
  options.collect_report = true;
  Result<OptimizedQuery> optimized =
      OptimizeQuery(instance.catalog, instance.graph, options);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  EXPECT_EQ(optimized->tier, OptimizerTier::kGreedy);
  ASSERT_TRUE(optimized->report.has_value());
  const OptimizeReport& report = *optimized->report;
  EXPECT_EQ(report.tiers_attempted, 3);
  ASSERT_EQ(report.degradations.size(), 2u);
  for (const std::string& entry : report.degradations) {
    EXPECT_NE(entry.find("deadline"), std::string::npos) << entry;
  }
  // The plan is still a real plan over all 15 relations.
  EXPECT_GT(optimized->cost, 0);
}

TEST(ParallelGovernorTest, GenerousBudgetCompletesAndMatchesSequential) {
  const testing::RandomInstance instance =
      testing::MakeRandomInstance(14, /*seed=*/17);
  Result<OptimizeOutcome> plain = OptimizeJoin(
      instance.catalog, instance.graph, OptimizerOptions{});
  ASSERT_TRUE(plain.ok());
  OptimizerOptions governed = ForcedParallel();
  governed.budget.deadline_seconds = 3600;
  governed.budget.max_dp_table_bytes = 1ull << 30;
  Result<OptimizeOutcome> outcome =
      OptimizeJoin(instance.catalog, instance.graph, governed);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->cost, plain->cost);
}

}  // namespace
}  // namespace blitz
