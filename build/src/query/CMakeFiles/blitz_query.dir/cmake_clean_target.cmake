file(REMOVE_RECURSE
  "libblitz_query.a"
)
