#ifndef BLITZ_QUERY_PLAN_SPACE_H_
#define BLITZ_QUERY_PLAN_SPACE_H_

#include <cstdint>

namespace blitz {

/// Closed-form sizes of the join-order search spaces discussed in the
/// paper's introduction and related-work sections ([IK91]'s left-deep vs
/// bushy comparison, [OL90]'s enumeration counts). Values are returned as
/// doubles because they overflow 64-bit integers quickly (the bushy space
/// at n = 15 already has ~2.0e14 shapes x orders).

/// Number of left-deep plans over n distinct relations: n!.
double NumLeftDeepPlans(int n);

/// Number of bushy plans over n distinct relations, counting both tree
/// shape and leaf order and distinguishing left/right children:
/// n! * Catalan(n-1) = (2n-2)! / (n-1)!.
double NumBushyPlans(int n);

/// Number of unordered binary tree shapes over n distinct leaves (plans up
/// to commutativity): (2n-3)!! = 1*3*5*...*(2n-3) for n >= 2; 1 for n <= 1.
double NumBushyPlansUpToCommutativity(int n);

/// Join pairs a bushy dynamic programming enumerator evaluates over all
/// subsets (both orientations), with Cartesian products allowed:
/// 3^n - 2^(n+1) + 1 — the paper's aggregate loop count (Section 3.3).
double NumDpSplits(int n);

/// Join candidates a left-deep DP enumerates: sum over non-singleton
/// subsets of |S| = n 2^(n-1) - n.
double NumLeftDeepDpJoins(int n);

/// Number of table rows a subset DP allocates: 2^n - 1 nonempty subsets.
double NumDpTableRows(int n);

}  // namespace blitz

#endif  // BLITZ_QUERY_PLAN_SPACE_H_
