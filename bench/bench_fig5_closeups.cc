// Regenerates Figure 5 of the paper: enlarged close-ups of two Figure 4
// cells, with fully labeled axes —
//   (a) naive cost model kappa_0 on the chain topology, and
//   (b) disk-nested-loops kappa_dnl on cycle+3.
// Entries are optimization times in milliseconds at n = 15 (the paper's HP
// timings for these cells are roughly 0.6-1.1 s; the shape, not the
// absolute scale, is the reproduction target).
//
// Environment knobs: BLITZ_BENCH_MIN_SECONDS (default 0.05),
// BLITZ_FIG5_N (default 15).

#include <cstdio>

#include "benchlib/sweep.h"
#include "benchlib/table_out.h"
#include "benchlib/timing.h"
#include "common/strings.h"

namespace blitz {
namespace {

int PrintCell(const char* title, CostModelKind model, Topology topology,
              int n) {
  SweepConfig config;
  config.num_relations = n;
  config.models = {model};
  config.topologies = {topology};
  config.mean_cardinalities = MeanCardinalityGrid(16);  // 1 .. 10^10
  config.variabilities = VariabilityGrid(5);
  config.min_seconds_per_point = BenchMinSeconds(0.05);

  Result<std::vector<SweepPoint>> points = RunSweep(config);
  if (!points.ok()) {
    std::fprintf(stderr, "sweep failed: %s\n",
                 points.status().ToString().c_str());
    return 1;
  }

  std::printf("%s\n", title);
  TextTable cell;
  std::vector<std::string> header = {"variability \\ mean card"};
  for (const double mean : config.mean_cardinalities) {
    header.push_back(StrFormat("%.3g", mean));
  }
  cell.SetHeader(std::move(header));
  const size_t means = config.mean_cardinalities.size();
  for (size_t v = 0; v < config.variabilities.size(); ++v) {
    std::vector<std::string> row = {
        StrFormat("%.2f", config.variabilities[v])};
    for (size_t m = 0; m < means; ++m) {
      row.push_back(
          StrFormat("%.1f ms", (*points)[v * means + m].seconds * 1e3));
    }
    cell.AddRow(std::move(row));
  }
  std::printf("%s\n", cell.ToString().c_str());
  return 0;
}

int Run() {
  const int n = BenchEnvInt("BLITZ_FIG5_N", 15);
  std::printf("Figure 5: close-ups of two Figure 4 cells (n = %d)\n\n", n);
  if (PrintCell("(a) cost model kappa_0 (naive), topology chain",
                CostModelKind::kNaive, Topology::kChain, n) != 0) {
    return 1;
  }
  return PrintCell("(b) cost model kappa_dnl, topology cycle+3",
                   CostModelKind::kDiskNestedLoops, Topology::kCyclePlus3,
                   n);
}

}  // namespace
}  // namespace blitz

int main() { return blitz::Run(); }
