#ifndef BLITZ_COMMON_STRINGS_H_
#define BLITZ_COMMON_STRINGS_H_

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace blitz {

/// printf-style formatting into a std::string. (GCC 12 lacks std::format.)
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Splits `s` on `delim`, dropping empty fields when `keep_empty` is false.
std::vector<std::string> StrSplit(std::string_view s, char delim,
                                  bool keep_empty = false);

/// Removes leading and trailing ASCII whitespace.
std::string_view StrTrim(std::string_view s);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Joins the elements of `parts` with `sep` between them.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Parses a double, returning false on any trailing garbage or empty input.
bool ParseDouble(std::string_view s, double* out);

/// Parses a non-negative integer, returning false on garbage or overflow.
bool ParseInt(std::string_view s, int* out);

}  // namespace blitz

#endif  // BLITZ_COMMON_STRINGS_H_
