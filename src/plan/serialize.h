#ifndef BLITZ_PLAN_SERIALIZE_H_
#define BLITZ_PLAN_SERIALIZE_H_

#include <string>
#include <string_view>

#include "catalog/catalog.h"
#include "common/status.h"
#include "plan/plan.h"

namespace blitz {

/// Serializes a plan to a compact s-expression:
///
///   plan := leaf | "(" plan " " plan ")" [ "@" algorithm ]
///   leaf := relation name (catalog given) or R<i>
///
/// e.g. "((A B)@hash (C D)@sort-merge)@nested-loops". The "@algorithm"
/// suffix is emitted only for annotated nodes. Round-trips through
/// ParsePlan.
std::string SerializePlan(const Plan& plan, const Catalog* catalog = nullptr);

/// Parses the SerializePlan format. Relation names are resolved through the
/// catalog when given (falling back to R<i> syntax); without a catalog only
/// the R<i> syntax is accepted. Validates that each relation appears at
/// most once.
Result<Plan> ParsePlan(std::string_view text,
                       const Catalog* catalog = nullptr);

}  // namespace blitz

#endif  // BLITZ_PLAN_SERIALIZE_H_
