#include "parallel/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace blitz {
namespace {

TEST(ThreadPoolTest, ZeroWorkersRunsEverythingOnCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0);
  EXPECT_EQ(pool.num_participants(), 1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<int> order;
  pool.Run(5, [&](int t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(t);
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, EveryTaskRunsExactlyOnce) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_participants(), 4);
  for (const int num_tasks : {0, 1, 3, 4, 17, 100}) {
    std::vector<std::atomic<int>> hits(static_cast<size_t>(num_tasks));
    for (auto& h : hits) h.store(0);
    pool.Run(num_tasks, [&](int t) {
      hits[static_cast<size_t>(t)].fetch_add(1);
    });
    for (int t = 0; t < num_tasks; ++t) {
      EXPECT_EQ(hits[static_cast<size_t>(t)].load(), 1)
          << "task " << t << " of " << num_tasks;
    }
  }
}

TEST(ThreadPoolTest, RunIsABarrier) {
  // After Run returns, all side effects of all tasks must be visible to the
  // caller without extra synchronization.
  ThreadPool pool(4);
  constexpr int kTasks = 64;
  std::vector<std::uint64_t> out(kTasks, 0);
  pool.Run(kTasks, [&](int t) {
    out[static_cast<size_t>(t)] = static_cast<std::uint64_t>(t) * t;
  });
  for (int t = 0; t < kTasks; ++t) {
    EXPECT_EQ(out[static_cast<size_t>(t)],
              static_cast<std::uint64_t>(t) * t);
  }
}

TEST(ThreadPoolTest, ManyConsecutiveRunsReuseWorkers) {
  // The rank-synchronous driver issues one Run per DP rank — dozens per
  // pass. Generations must not leak work across Runs.
  ThreadPool pool(2);
  std::atomic<std::uint64_t> total{0};
  std::uint64_t expected = 0;
  for (int round = 1; round <= 200; ++round) {
    pool.Run(round % 7, [&](int) { total.fetch_add(1); });
    expected += static_cast<std::uint64_t>(round % 7);
  }
  EXPECT_EQ(total.load(), expected);
}

TEST(ThreadPoolTest, ShardingIsStaticAndDeterministic) {
  // Task t runs on participant t mod P; re-running the same shape must give
  // the same task → participant mapping.
  ThreadPool pool(3);
  const int participants = pool.num_participants();
  constexpr int kTasks = 24;
  std::vector<std::thread::id> first(kTasks), second(kTasks);
  pool.Run(kTasks, [&](int t) {
    first[static_cast<size_t>(t)] = std::this_thread::get_id();
  });
  pool.Run(kTasks, [&](int t) {
    second[static_cast<size_t>(t)] = std::this_thread::get_id();
  });
  for (int t = 0; t < kTasks; ++t) {
    EXPECT_EQ(first[static_cast<size_t>(t)], second[static_cast<size_t>(t)]);
    // Same residue class, same thread.
    EXPECT_EQ(first[static_cast<size_t>(t)],
              first[static_cast<size_t>(t % participants)]);
  }
}

TEST(ThreadPoolTest, DestructorJoinsIdleWorkers) {
  for (int i = 0; i < 20; ++i) {
    ThreadPool pool(4);
    pool.Run(8, [](int) {});
  }  // destructor must not hang or leak threads
}

}  // namespace
}  // namespace blitz
