// Regenerates Figure 4 of the paper: the four-dimensional summary of
// performance sensitivities at n = 15 — a grid of optimization times over
// {naive, sort-merge, disk-nested-loops} cost models x {chain, cycle+3,
// star, clique} topologies, with mean base-relation cardinality and
// cardinality variability swept inside each cell.
//
// One text block is printed per (model, topology) cell: rows are
// variability (the figure's short axis), columns are mean cardinality (the
// long axis), entries are optimization times in milliseconds.
//
// Environment knobs: BLITZ_BENCH_MIN_SECONDS (default 0.02),
// BLITZ_FIG4_N (default 15), BLITZ_FIG4_MEANS (default 13 grid points),
// BLITZ_FIG4_VARS (default 5 grid points).

#include <cstdio>

#include "benchlib/sweep.h"
#include "benchlib/table_out.h"
#include "benchlib/timing.h"
#include "common/check.h"
#include "common/strings.h"
#include "obs/export.h"
#include "obs/metrics.h"

namespace blitz {
namespace {

int Run() {
  SweepConfig config;
  config.num_relations = BenchEnvInt("BLITZ_FIG4_N", 15);
  config.models = {CostModelKind::kNaive, CostModelKind::kSortMerge,
                   CostModelKind::kDiskNestedLoops};
  config.topologies = {Topology::kChain, Topology::kCyclePlus3,
                       Topology::kStar, Topology::kClique};
  config.mean_cardinalities =
      MeanCardinalityGrid(BenchEnvInt("BLITZ_FIG4_MEANS", 16));
  config.variabilities = VariabilityGrid(BenchEnvInt("BLITZ_FIG4_VARS", 5));
  config.min_seconds_per_point = BenchMinSeconds(0.02);

  std::printf(
      "Figure 4: 4-D performance sensitivities at n = %d\n"
      "(optimization time in ms; rows = cardinality variability,\n"
      " columns = geometric-mean base cardinality)\n\n",
      config.num_relations);

  Result<std::vector<SweepPoint>> points = RunSweep(config);
  if (!points.ok()) {
    std::fprintf(stderr, "sweep failed: %s\n",
                 points.status().ToString().c_str());
    return 1;
  }

  // One gauge per grid point so BLITZ_METRICS_OUT=BENCH_fig4.json captures
  // the whole surface mechanically.
  MetricsRegistry metrics;
  SetGlobalMetrics(&metrics);
  metrics.SetGauge("fig4.n", config.num_relations);
  for (const SweepPoint& point : *points) {
    metrics.SetGauge(
        StrFormat("fig4.%s.%s.var%.2f.mean%.3g.ms",
                  CostModelKindToString(point.model),
                  TopologyToString(point.topology), point.variability,
                  point.mean_cardinality),
        point.seconds * 1e3);
    metrics.RecordLatency("fig4.point_seconds", point.seconds);
  }

  const size_t means = config.mean_cardinalities.size();
  const size_t vars = config.variabilities.size();
  size_t index = 0;
  for (const CostModelKind model : config.models) {
    for (const Topology topology : config.topologies) {
      std::printf("--- cost model %s, topology %s ---\n",
                  CostModelKindToString(model), TopologyToString(topology));
      TextTable cell;
      std::vector<std::string> header = {"var\\mean"};
      for (const double mean : config.mean_cardinalities) {
        header.push_back(StrFormat("%.3g", mean));
      }
      cell.SetHeader(std::move(header));
      for (size_t v = 0; v < vars; ++v) {
        std::vector<std::string> row = {
            StrFormat("%.2f", config.variabilities[v])};
        for (size_t m = 0; m < means; ++m) {
          const SweepPoint& point = (*points)[index + v * means + m];
          BLITZ_CHECK(point.model == model && point.topology == topology);
          row.push_back(StrFormat("%.1f", point.seconds * 1e3));
        }
        cell.AddRow(std::move(row));
      }
      index += vars * means;
      std::printf("%s\n", cell.ToString().c_str());
    }
  }

  std::printf(
      "Expected shape (paper Section 6.2): times rise as mean cardinality\n"
      "approaches 1; cost-model differences shrink as cardinality grows;\n"
      "clique is the most expensive topology.\n");

  WriteMetricsJsonIfRequested();
  SetGlobalMetrics(nullptr);
  return 0;
}

}  // namespace
}  // namespace blitz

int main() { return blitz::Run(); }
