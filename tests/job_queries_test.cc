// End-to-end coverage of the JOB-style workload front end: every checked-in
// examples/queries/job/*.bjq must parse, describe a connected-enough
// problem, and optimize under all three cardinality estimators; the
// JOB-flavored .bjq directives (table, join, estimator) must parse and
// round-trip; and the serving tier must honor (or reject) the estimator
// directive and surface the resolved name on the wire.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/optimize_query.h"
#include "card/estimator.h"
#include "card/histogram.h"
#include "card/no_estimate.h"
#include "exec/datagen.h"
#include "exec/stats.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/stream.h"
#include "serve/wire.h"
#include "testing/corpus.h"
#include "textio/bjq.h"

#ifndef BLITZ_JOB_QUERY_DIR
#define BLITZ_JOB_QUERY_DIR "examples/queries/job"
#endif

namespace blitz {
namespace {

std::vector<std::string> JobQueryFiles() {
  return fuzz::ListCorpusFiles(BLITZ_JOB_QUERY_DIR);
}

TEST(JobQueriesTest, CheckedInSetIsPresent) {
  // The mini JOB set is part of the repo contract (tools/make_job_queries
  // regenerates it); an empty directory means the checkout is broken.
  EXPECT_GE(JobQueryFiles().size(), 10u);
}

TEST(JobQueriesTest, EveryQueryLoadsAndOptimizesUnderEveryEstimator) {
  const std::vector<std::string> files = JobQueryFiles();
  ASSERT_FALSE(files.empty());
  for (const std::string& path : files) {
    Result<QuerySpec> spec = LoadBjqFile(path);
    ASSERT_TRUE(spec.ok()) << path << ": " << spec.status().ToString();
    const int n = spec->catalog.num_relations();
    ASSERT_GE(n, 2) << path;
    ASSERT_GE(spec->graph.num_predicates(), 1) << path;

    // Exact baseline.
    QueryOptimizerOptions options;
    options.cost_model = spec->cost_model;
    Result<OptimizedQuery> exact =
        OptimizeQuery(spec->catalog, spec->graph, options);
    ASSERT_TRUE(exact.ok()) << path << ": " << exact.status().ToString();
    ASSERT_GT(exact->cost, 0.0) << path;
    EXPECT_EQ(exact->plan.relations(), spec->catalog.AllRelations()) << path;

    // noest: estimate-free optimization still covers every relation, and
    // its true-statistics cost can only match or exceed the exact plan's.
    NoEstimateEstimator no_estimate(spec->graph);
    options.estimator = &no_estimate;
    Result<OptimizedQuery> noest =
        OptimizeQuery(spec->catalog, spec->graph, options);
    ASSERT_TRUE(noest.ok()) << path << ": " << noest.status().ToString();
    EXPECT_EQ(noest->plan.relations(), spec->catalog.AllRelations()) << path;
    EXPECT_TRUE(std::isfinite(noest->cost)) << path;
    EXPECT_GE(noest->cost, exact->cost * 0.999) << path;

    // hist: histograms over synthetic tables realizing the catalog.
    DataGenOptions datagen;
    datagen.max_rows_per_table = 1 << 14;  // JOB cardinalities are huge.
    Result<std::vector<ExecTable>> tables =
        GenerateTables(spec->catalog, spec->graph, datagen);
    ASSERT_TRUE(tables.ok()) << path << ": " << tables.status().ToString();
    Result<std::unique_ptr<SampleHistogramEstimator>> histogram =
        BuildHistogramEstimator(spec->graph, *tables);
    ASSERT_TRUE(histogram.ok()) << path << ": "
                                << histogram.status().ToString();
    options.estimator = histogram->get();
    Result<OptimizedQuery> hist =
        OptimizeQuery(spec->catalog, spec->graph, options);
    ASSERT_TRUE(hist.ok()) << path << ": " << hist.status().ToString();
    EXPECT_EQ(hist->plan.relations(), spec->catalog.AllRelations()) << path;
    EXPECT_TRUE(std::isfinite(hist->cost)) << path;
    EXPECT_GE(hist->cost, exact->cost * 0.999) << path;
  }
}

TEST(JobQueriesTest, GeneratedFilesRoundTripThroughWriteBjq) {
  for (const std::string& path : JobQueryFiles()) {
    Result<QuerySpec> spec = LoadBjqFile(path);
    ASSERT_TRUE(spec.ok()) << path;
    Result<QuerySpec> again = ParseBjq(WriteBjq(*spec));
    ASSERT_TRUE(again.ok()) << path << ": " << again.status().ToString();
    EXPECT_EQ(again->catalog.num_relations(),
              spec->catalog.num_relations())
        << path;
    EXPECT_EQ(again->graph.num_predicates(), spec->graph.num_predicates())
        << path;
    EXPECT_EQ(again->cost_model, spec->cost_model) << path;
  }
}

// ---------------------------------------------------------------------------
// The JOB-flavored directives.

TEST(BjqJobDirectivesTest, TableIsASynonymForRelation) {
  Result<QuerySpec> spec = ParseBjq(
      "table movies 1000\n"
      "relation actors 500\n"
      "predicate movies actors 0.01\n");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->catalog.num_relations(), 2);
  EXPECT_EQ(spec->catalog.cardinality(0), 1000.0);
}

TEST(BjqJobDirectivesTest, JoinDirectiveAppliesTheSystemRRule) {
  // Explicit distinct counts: sel = 1 / max(200, 50) = 0.005.
  Result<QuerySpec> spec = ParseBjq(
      "table a 1000\n"
      "table b 400\n"
      "join a.id = b.a_id 200 50\n");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  ASSERT_EQ(spec->graph.num_predicates(), 1);
  EXPECT_DOUBLE_EQ(spec->graph.Selectivity(0, 1), 1.0 / 200.0);

  // Distincts default to the declared (pre-filter) row counts, even when a
  // filter later scales the catalog cardinality down.
  Result<QuerySpec> defaulted = ParseBjq(
      "table a 1000\n"
      "table b 400\n"
      "filter a 0.1\n"
      "join a.id = b.a_id\n");
  ASSERT_TRUE(defaulted.ok()) << defaulted.status().ToString();
  ASSERT_EQ(defaulted->graph.num_predicates(), 1);
  EXPECT_DOUBLE_EQ(defaulted->graph.Selectivity(0, 1), 1.0 / 1000.0);
  EXPECT_DOUBLE_EQ(defaulted->catalog.cardinality(0), 100.0);
}

TEST(BjqJobDirectivesTest, JoinDirectiveRejectsMalformedInput) {
  const char* broken[] = {
      "table a 10\ntable b 10\njoin a.id b.a_id\n",       // missing '='.
      "table a 10\ntable b 10\njoin aid = b.a_id\n",      // no dot.
      "table a 10\ntable b 10\njoin a.id = c.a_id\n",     // unknown table.
      "table a 10\ntable b 10\njoin a.id = b.a_id -1 5\n",  // bad distinct.
      "table a 10\ntable b 10\njoin a.id = b.a_id 5\n",   // one distinct.
  };
  for (const char* text : broken) {
    EXPECT_FALSE(ParseBjq(text).ok()) << text;
  }
}

TEST(BjqJobDirectivesTest, EstimatorDirectiveParsesAndRoundTrips) {
  Result<QuerySpec> spec = ParseBjq(
      "relation A 100\n"
      "relation B 200\n"
      "predicate A B 0.1\n"
      "estimator noest\n");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  ASSERT_TRUE(spec->estimator.has_value());
  EXPECT_EQ(*spec->estimator, EstimatorKind::kNoEstimate);

  const std::string text = WriteBjq(*spec);
  EXPECT_NE(text.find("estimator noest"), std::string::npos);
  Result<QuerySpec> again = ParseBjq(text);
  ASSERT_TRUE(again.ok());
  ASSERT_TRUE(again->estimator.has_value());
  EXPECT_EQ(*again->estimator, EstimatorKind::kNoEstimate);

  // Absent directive -> no estimator requested.
  Result<QuerySpec> plain = ParseBjq("relation A 100\n");
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->estimator.has_value());

  // Unknown name is a parse error listing the valid names.
  Result<QuerySpec> bad = ParseBjq("relation A 100\nestimator oracle\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("paper"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Serving: the estimator directive over the wire.

class TestConnection {
 public:
  explicit TestConnection(BlitzServer* server) {
    auto [client_end, server_end] = CreateDuplexPipe();
    client_end_ = std::move(client_end);
    server_end_ = std::move(server_end);
    thread_ = std::thread([server, stream = server_end_.get()] {
      (void)server->Serve(stream);
    });
  }

  ~TestConnection() {
    if (thread_.joinable()) {
      client_end_->CloseWrite();
      thread_.join();
    }
  }

  ByteStream* stream() { return client_end_.get(); }

 private:
  std::unique_ptr<ByteStream> client_end_;
  std::unique_ptr<ByteStream> server_end_;
  std::thread thread_;
};

constexpr char kServeBody[] =
    "relation A 100\nrelation B 200\npredicate A B 0.1\n";

TEST(JobServeTest, ReplyCarriesTheResolvedEstimator) {
  Result<std::unique_ptr<BlitzServer>> server =
      BlitzServer::Create(ServerOptions{});
  ASSERT_TRUE(server.ok());
  TestConnection conn(server->get());
  BlitzClient client(conn.stream(), BlitzClient::Options{});

  Result<ServeReply> plain = client.Optimize(kServeBody);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_EQ(plain->estimator, "paper");

  Result<ServeReply> noest =
      client.Optimize(std::string(kServeBody) + "estimator noest\n");
  ASSERT_TRUE(noest.ok()) << noest.status().ToString();
  EXPECT_EQ(noest->estimator, "noest");
}

TEST(JobServeTest, HistIsRejectedPerRequest) {
  Result<std::unique_ptr<BlitzServer>> server =
      BlitzServer::Create(ServerOptions{});
  ASSERT_TRUE(server.ok());
  TestConnection conn(server->get());
  BlitzClient client(conn.stream(), BlitzClient::Options{});

  Result<ServeReply> hist =
      client.Optimize(std::string(kServeBody) + "estimator hist\n");
  ASSERT_FALSE(hist.ok());
  EXPECT_NE(hist.status().message().find("hist"), std::string::npos);
}

TEST(JobServeTest, HistIsRejectedAsAServerDefault) {
  ServerOptions options;
  options.default_estimator = EstimatorKind::kSampleHistogram;
  EXPECT_FALSE(BlitzServer::Create(options).ok());
}

TEST(JobServeTest, NoestServerDefaultAppliesWhenUnspecified) {
  ServerOptions options;
  options.default_estimator = EstimatorKind::kNoEstimate;
  Result<std::unique_ptr<BlitzServer>> server = BlitzServer::Create(options);
  ASSERT_TRUE(server.ok());
  TestConnection conn(server->get());
  BlitzClient client(conn.stream(), BlitzClient::Options{});

  Result<ServeReply> reply = client.Optimize(kServeBody);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->estimator, "noest");
}

}  // namespace
}  // namespace blitz
