#include "card/no_estimate.h"

#include <bit>
#include <cmath>
#include <cstdint>

namespace blitz {

namespace {

double UnitPower(int exponent) {
  if (exponent <= 0) return 1.0;
  return std::pow(NoEstimateEstimator::kUnit, exponent);
}

}  // namespace

double NoEstimateEstimator::EstimateCardinality(RelSet s) const {
  int edges = 0;
  for (const Predicate& p : graph_->predicates()) {
    if (s.Contains(p.lhs) && s.Contains(p.rhs)) ++edges;
  }
  return UnitPower(s.size() - edges);
}

void NoEstimateEstimator::EstimateAll(std::vector<double>* cards) const {
  const int n = graph_->num_relations();
  const std::uint64_t table_size = std::uint64_t{1} << n;
  cards->assign(table_size, 0.0);
  // edges(S) = edges(S \ {min S}) + |neighbors(min S) ∩ S|, so one O(2^n)
  // sweep beats re-scanning the predicate list per subset.
  std::vector<std::uint16_t> edges(table_size, 0);
  for (std::uint64_t s = 1; s < table_size; ++s) {
    const int lowest = std::countr_zero(s);
    const std::uint64_t rest = s & (s - 1);
    edges[s] = static_cast<std::uint16_t>(
        edges[rest] +
        std::popcount(graph_->Neighbors(lowest).word() & rest));
    (*cards)[s] = UnitPower(std::popcount(s) - edges[s]);
  }
}

}  // namespace blitz
