#include "query/plan_space.h"

#include <cmath>

#include "common/check.h"

namespace blitz {

namespace {

double Factorial(int n) {
  double out = 1;
  for (int i = 2; i <= n; ++i) out *= i;
  return out;
}

}  // namespace

double NumLeftDeepPlans(int n) {
  BLITZ_CHECK(n >= 0);
  return Factorial(n);
}

double NumBushyPlans(int n) {
  BLITZ_CHECK(n >= 0);
  if (n <= 1) return n == 0 ? 0 : 1;
  // (2n-2)! / (n-1)!.
  double out = 1;
  for (int i = n; i <= 2 * n - 2; ++i) out *= i;
  return out;
}

double NumBushyPlansUpToCommutativity(int n) {
  BLITZ_CHECK(n >= 0);
  if (n <= 1) return n == 0 ? 0 : 1;
  double out = 1;
  for (int i = 3; i <= 2 * n - 3; i += 2) out *= i;
  return out;
}

double NumDpSplits(int n) {
  BLITZ_CHECK(n >= 0);
  return std::pow(3.0, n) - 2.0 * std::pow(2.0, n) + 1.0;
}

double NumLeftDeepDpJoins(int n) {
  BLITZ_CHECK(n >= 0);
  return n * std::pow(2.0, n - 1) - n;
}

double NumDpTableRows(int n) {
  BLITZ_CHECK(n >= 0);
  return std::pow(2.0, n) - 1.0;
}

}  // namespace blitz
