#ifndef BLITZ_COST_COST_MODEL_H_
#define BLITZ_COST_COST_MODEL_H_

#include <algorithm>
#include <cmath>
#include <string>
#include <string_view>

#include "common/status.h"

namespace blitz {

/// Identifies one of the built-in cost models. The optimizer core is a
/// template over a cost-model policy type (so each model gets its own tight
/// inner loop); this enum is the runtime-dispatch handle used by the facade,
/// the plan evaluator, and the text formats.
enum class CostModelKind {
  kNaive,            ///< kappa_0: cost = |R_out| (Section 3.1).
  kSortMerge,        ///< kappa_sm (Appendix).
  kDiskNestedLoops,  ///< kappa_dnl (Appendix), K = 10, M = 100.
  kMinSmDnl,         ///< min(kappa_sm, kappa_dnl) — multiple join algorithms
                     ///< as discussed in Section 6.5.
  kHash,             ///< kappa_h: build + probe + output (extension; not in
                     ///< the paper's test matrix).
  kMinAll,           ///< min(kappa_sm, kappa_dnl, kappa_h) — the Section 6.5
                     ///< treatment extended to three algorithms.
};

/// "naive", "sm", "dnl", "min", "hash", or "minall".
const char* CostModelKindToString(CostModelKind kind);

/// Parses the strings produced by CostModelKindToString (plus a few long
/// aliases: "sortmerge", "disknestedloops", "minsmdnl").
Result<CostModelKind> ParseCostModelKind(std::string_view s);

/// Default parameters of the disk-nested-loops model, from the Appendix:
/// "we arbitrarily set K = 10 and M = 100".
inline constexpr double kDnlBlockingFactor = 10.0;  // K
inline constexpr double kDnlMemoryBlocks = 100.0;   // M

// ---------------------------------------------------------------------------
// Cost-model policy types.
//
// Each policy supplies the paper's decomposition kappa = kappa' + kappa''
// (Section 3.2): KappaPrime is the split-independent component (a function of
// the output cardinality only, evaluated once per subset, outside the
// best-split loop), and KappaDoublePrime is the split-dependent component
// (evaluated inside the loop, ideally rarely thanks to the nested-if
// short-circuiting). Both components must be non-negative or the
// short-circuiting would be unsound.
//
// Models that can memoize a per-subset quantity (kappa_sm's x*(1+log x))
// declare kNeedsAux = true and provide Aux(card); the DP table then carries
// one extra column, exactly as suggested in the Appendix ("the expensive
// logarithm computation in this model can be memoized in the dynamic
// programming table").
// ---------------------------------------------------------------------------

// Models additionally declare kSplitGateTight: whether kappa'' = 0, which
// makes the model-independent operand gate of the best-split loop
//     cost[lhs] + cost[rhs] < best
// the *complete* cost comparison. The SIMD batch filter (simd/
// split_filter.h) evaluates exactly that gate, so for tight models it
// prunes to the true improvements and pays for itself; for models with a
// large split-dependent kappa'' the gate passes nearly every split (best
// tracks dpnd = oprnd + kappa'' minima, far above the operand sums) and
// batching is pure overhead. Auto dispatch consults this trait; explicit
// --simd= / BLITZ_SIMD requests override it (core/optimizer.cc).

/// kappa_0(R_out, R_lhs, R_rhs) = |R_out|. Decomposes as kappa' = |R_out|,
/// kappa'' = 0.
struct NaiveCostModel {
  static constexpr CostModelKind kKind = CostModelKind::kNaive;
  static constexpr bool kNeedsAux = false;
  static constexpr bool kSplitGateTight = true;

  static double Aux(double) { return 0.0; }

  double KappaPrime(double out_card) const { return out_card; }

  double KappaDoublePrime(double /*out_card*/, double /*lhs_card*/,
                          double /*rhs_card*/, double /*lhs_aux*/,
                          double /*rhs_aux*/) const {
    return 0.0;
  }
};

/// kappa_sm = |R_lhs|(1 + log|R_lhs|) + |R_rhs|(1 + log|R_rhs|).
/// Decomposes as kappa' = 0 and kappa'' = the whole thing, with the
/// x(1 + log x) terms memoized per table entry.
///
/// Estimated cardinalities can fall below 1, where log goes negative and
/// would violate the non-negativity requirement; we clamp the argument to 1
/// (a sub-tuple input costs as much as a one-tuple input).
struct SortMergeCostModel {
  static constexpr CostModelKind kKind = CostModelKind::kSortMerge;
  static constexpr bool kNeedsAux = true;
  static constexpr bool kSplitGateTight = false;

  static double Aux(double card) {
    const double x = std::max(card, 1.0);
    return x * (1.0 + std::log(x));
  }

  double KappaPrime(double /*out_card*/) const { return 0.0; }

  double KappaDoublePrime(double /*out_card*/, double /*lhs_card*/,
                          double /*rhs_card*/, double lhs_aux,
                          double rhs_aux) const {
    return lhs_aux + rhs_aux;
  }
};

/// kappa_dnl = 2|R_out|/K + |R_lhs||R_rhs| / (K^2 (M-1)) +
///             min(|R_lhs|,|R_rhs|)/K, with blocking factor K and M memory
/// blocks. The 2|R_out|/K term is split-independent and becomes kappa'.
struct DiskNestedLoopsCostModel {
  static constexpr CostModelKind kKind = CostModelKind::kDiskNestedLoops;
  static constexpr bool kNeedsAux = false;
  static constexpr bool kSplitGateTight = false;

  static double Aux(double) { return 0.0; }

  double KappaPrime(double out_card) const {
    return 2.0 * out_card / blocking_factor;
  }

  double KappaDoublePrime(double /*out_card*/, double lhs_card,
                          double rhs_card, double /*lhs_aux*/,
                          double /*rhs_aux*/) const {
    return lhs_card * rhs_card /
               (blocking_factor * blocking_factor * (memory_blocks - 1.0)) +
           std::min(lhs_card, rhs_card) / blocking_factor;
  }

  double blocking_factor = kDnlBlockingFactor;
  double memory_blocks = kDnlMemoryBlocks;
};

/// min(kappa_sm, kappa_dnl): the Section 6.5 treatment of multiple join
/// algorithms. The min of two decomposable functions does not decompose
/// term-wise, so kappa' = 0 and kappa'' computes both totals. ("There is no
/// need to keep track of which algorithm yields the minimum" — the choice is
/// re-derived by a plan traversal afterwards; see plan/algorithm_choice.h.)
struct MinSmDnlCostModel {
  static constexpr CostModelKind kKind = CostModelKind::kMinSmDnl;
  static constexpr bool kNeedsAux = true;
  static constexpr bool kSplitGateTight = false;

  static double Aux(double card) { return SortMergeCostModel::Aux(card); }

  double KappaPrime(double /*out_card*/) const { return 0.0; }

  double KappaDoublePrime(double out_card, double lhs_card, double rhs_card,
                          double lhs_aux, double rhs_aux) const {
    const double sm = sm_model.KappaDoublePrime(out_card, lhs_card, rhs_card,
                                                lhs_aux, rhs_aux);
    const double dnl =
        dnl_model.KappaPrime(out_card) +
        dnl_model.KappaDoublePrime(out_card, lhs_card, rhs_card, 0.0, 0.0);
    return std::min(sm, dnl);
  }

  SortMergeCostModel sm_model;
  DiskNestedLoopsCostModel dnl_model;
};

/// kappa_h = |R_lhs| + |R_rhs| + |R_out|: a classical in-memory hash-join
/// cost (build the smaller side, probe the other, emit the output). Not one
/// of the paper's three models; provided as an extension so the
/// multi-algorithm treatment of Section 6.5 can choose among three
/// algorithms. Decomposes as kappa' = |R_out| and kappa'' = |L| + |R|.
struct HashCostModel {
  static constexpr CostModelKind kKind = CostModelKind::kHash;
  static constexpr bool kNeedsAux = false;
  static constexpr bool kSplitGateTight = false;

  static double Aux(double) { return 0.0; }

  double KappaPrime(double out_card) const { return out_card; }

  double KappaDoublePrime(double /*out_card*/, double lhs_card,
                          double rhs_card, double /*lhs_aux*/,
                          double /*rhs_aux*/) const {
    return lhs_card + rhs_card;
  }
};

/// min(kappa_sm, kappa_dnl, kappa_h): Section 6.5's "the cost of a join is
/// kappa = min(...)" with a third algorithm added. As with MinSmDnl, the
/// min does not decompose term-wise, so kappa' = 0.
struct MinAllCostModel {
  static constexpr CostModelKind kKind = CostModelKind::kMinAll;
  static constexpr bool kNeedsAux = true;
  static constexpr bool kSplitGateTight = false;

  static double Aux(double card) { return SortMergeCostModel::Aux(card); }

  double KappaPrime(double /*out_card*/) const { return 0.0; }

  double KappaDoublePrime(double out_card, double lhs_card, double rhs_card,
                          double lhs_aux, double rhs_aux) const {
    const double two = min_sm_dnl.KappaDoublePrime(out_card, lhs_card,
                                                   rhs_card, lhs_aux,
                                                   rhs_aux);
    const double hash =
        hash_model.KappaPrime(out_card) +
        hash_model.KappaDoublePrime(out_card, lhs_card, rhs_card, 0.0, 0.0);
    return std::min(two, hash);
  }

  MinSmDnlCostModel min_sm_dnl;
  HashCostModel hash_model;
};

// ---------------------------------------------------------------------------
// Runtime evaluation (used by the plan evaluator and baselines, where the
// per-join cost is not on a 3^n-iteration hot path).
// ---------------------------------------------------------------------------

/// Full kappa(R_out, R_lhs, R_rhs) = kappa' + kappa'' for the given model.
double EvalJoinCost(CostModelKind kind, double out_card, double lhs_card,
                    double rhs_card);

/// The split-independent component kappa'(R_out) alone.
double EvalKappaPrime(CostModelKind kind, double out_card);

/// The split-dependent component kappa''.
double EvalKappaDoublePrime(CostModelKind kind, double out_card,
                            double lhs_card, double rhs_card);

/// Invokes fn(model) with the concrete policy object for `kind`. This is the
/// bridge from the runtime enum to the compile-time policy world.
template <typename Fn>
decltype(auto) DispatchCostModel(CostModelKind kind, Fn&& fn) {
  switch (kind) {
    case CostModelKind::kNaive:
      return fn(NaiveCostModel{});
    case CostModelKind::kSortMerge:
      return fn(SortMergeCostModel{});
    case CostModelKind::kDiskNestedLoops:
      return fn(DiskNestedLoopsCostModel{});
    case CostModelKind::kMinSmDnl:
      return fn(MinSmDnlCostModel{});
    case CostModelKind::kHash:
      return fn(HashCostModel{});
    case CostModelKind::kMinAll:
      return fn(MinAllCostModel{});
  }
  // Unreachable for valid enum values.
  return fn(NaiveCostModel{});
}

}  // namespace blitz

#endif  // BLITZ_COST_COST_MODEL_H_
