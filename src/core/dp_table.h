#ifndef BLITZ_CORE_DP_TABLE_H_
#define BLITZ_CORE_DP_TABLE_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/status.h"
#include "core/relset.h"

namespace blitz {

/// The cost of a rejected plan (overflowed or over threshold). Costs are
/// single-precision floats, as in Section 6.3 of the paper: "We represent
/// costs as single-precision floating-point values, and summarily reject
/// plans whose cost overflows."
inline constexpr float kRejectedCost = std::numeric_limits<float>::infinity();

/// The dynamic programming table of Section 3.2, generalized to the join
/// setting of Section 5.4: one row per nonempty subset of the relation set,
/// indexed by the subset's bit-vector word.
///
/// The layout is struct-of-arrays rather than the paper's 16-byte row: the
/// best-split loop touches only the cost column (plus the cardinality/aux
/// columns when kappa'' needs them), so splitting the columns keeps the hot
/// data dense in cache. Columns that a given configuration does not need
/// (pi_fan for Cartesian-only problems, aux for models without a memo) are
/// simply not allocated.
class DpTable {
 public:
  /// Allocates a table for n relations (2^n rows). `with_pi_fan` allocates
  /// the Pi_fan column of Section 5.4; `with_aux` allocates the per-model
  /// memo column (e.g. x(1+log x) for the sort-merge model).
  static Result<DpTable> Create(int n, bool with_pi_fan, bool with_aux);

  /// Exact byte footprint a Create(n, with_pi_fan, with_aux) table will
  /// allocate, computable without allocating — the resource governor's
  /// admission-control estimate and the single source of truth for table
  /// sizing (MemoryBytes() of a live table returns the same number, and a
  /// test asserts both equal the vectors' actual capacity bytes). 0 for n
  /// outside [1, kMaxRelations].
  static std::uint64_t EstimateBytes(int n, bool with_pi_fan, bool with_aux);

  /// An empty (zero-relation) table; useful only as a placeholder to be
  /// move-assigned into.
  DpTable() = default;

  DpTable(DpTable&&) = default;
  DpTable& operator=(DpTable&&) = default;
  DpTable(const DpTable&) = delete;
  DpTable& operator=(const DpTable&) = delete;

  int num_relations() const { return n_; }

  /// Number of rows, 2^n (row 0, the empty set, is unused).
  std::uint64_t size() const { return std::uint64_t{1} << n_; }

  /// The full relation set {R0..R{n-1}}.
  RelSet AllRelations() const { return RelSet::FirstN(n_); }

  bool has_pi_fan() const { return !pi_fan_.empty(); }
  bool has_aux() const { return !aux_.empty(); }

  // Column accessors (by set). Valid only for nonempty sets that have been
  // filled in by an optimizer run.
  double card(RelSet s) const { return card_[s.word()]; }
  float cost(RelSet s) const { return cost_[s.word()]; }
  RelSet best_lhs(RelSet s) const {
    return RelSet::FromWord(best_lhs_[s.word()]);
  }
  double pi_fan(RelSet s) const { return pi_fan_[s.word()]; }

  /// True if no plan for s survived (cost overflow or threshold rejection).
  bool rejected(RelSet s) const { return !(cost_[s.word()] < kRejectedCost); }

  // Raw column pointers for the optimizer hot loop.
  float* cost_data() { return cost_.data(); }
  double* card_data() { return card_.data(); }
  double* pi_fan_data() { return pi_fan_.data(); }
  double* aux_data() { return aux_.data(); }
  std::uint32_t* best_lhs_data() { return best_lhs_.data(); }

  /// Exact memory footprint in bytes: EstimateBytes() evaluated for this
  /// table's shape, so pre-admission estimates and post-allocation
  /// reporting can never disagree. 0 for a default-constructed table.
  std::uint64_t MemoryBytes() const;

  /// Bytes actually reserved by the column vectors (capacity sum). Exists
  /// so tests can pin MemoryBytes()/EstimateBytes() to reality; everything
  /// else should use MemoryBytes().
  std::uint64_t AllocatedBytes() const;

 private:
  int n_ = 0;
  std::vector<float> cost_;
  std::vector<double> card_;
  std::vector<std::uint32_t> best_lhs_;
  std::vector<double> pi_fan_;  ///< Empty unless with_pi_fan.
  std::vector<double> aux_;     ///< Empty unless with_aux.
};

}  // namespace blitz

#endif  // BLITZ_CORE_DP_TABLE_H_
