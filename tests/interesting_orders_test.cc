#include "api/interesting_orders.h"

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "query/equivalence.h"
#include "test_util.h"

namespace blitz {
namespace {

using ::blitz::testing::MakeRandomInstance;

double Aux(double card) { return std::max(card, 1.0) *
                                 (1.0 + std::log(std::max(card, 1.0))); }

float PlainSortMergeCost(const Catalog& catalog, const JoinGraph& graph) {
  OptimizerOptions options;
  options.cost_model = CostModelKind::kSortMerge;
  Result<OptimizeOutcome> outcome = OptimizeJoin(catalog, graph, options);
  BLITZ_CHECK(outcome.ok() && outcome->found_plan());
  return outcome->cost;
}

TEST(InterestingOrdersTest, TwoRelationsMatchesHandComputation) {
  Result<Catalog> catalog = Catalog::FromCardinalities({100, 400});
  ASSERT_TRUE(catalog.ok());
  JoinGraph graph(2);
  ASSERT_TRUE(graph.AddPredicate(0, 1, 0.01).ok());
  Result<InterestingOrdersResult> result = OptimizeWithInterestingOrders(
      *catalog, graph, IdentityPredicateClasses(graph));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NEAR(result->cost, Aux(100) + Aux(400), 1e-2);
  EXPECT_EQ(result->sorts_avoided, 0);
  EXPECT_EQ(result->plan.root().algorithm, JoinAlgorithm::kSortMerge);
  EXPECT_EQ(result->plan.root().sort_class, 0);
}

TEST(InterestingOrdersTest, IdentityClassesMatchPlainSortMergeDp) {
  // With every predicate in its own class no order can ever be reused (a
  // predicate spans exactly one join of any plan), so the order-aware
  // optimum equals the plain kappa_sm optimum.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto instance = MakeRandomInstance(8, seed);
    Result<InterestingOrdersResult> result = OptimizeWithInterestingOrders(
        instance.catalog, instance.graph,
        IdentityPredicateClasses(instance.graph));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->sorts_avoided, 0) << "seed " << seed;
    const float plain = PlainSortMergeCost(instance.catalog, instance.graph);
    EXPECT_NEAR(result->cost, plain, 1e-4 * std::max(1.0f, plain))
        << "seed " << seed;
  }
}

TEST(InterestingOrdersTest, SharedClassEnablesReuse) {
  // Three relations joined on one common attribute (a closed equivalence
  // class): the middle result is already sorted on the class, so the top
  // merge skips one sort.
  Result<Catalog> catalog = Catalog::FromCardinalities({1000, 1000, 1000});
  ASSERT_TRUE(catalog.ok());
  JoinSpecBuilder builder(3);
  ASSERT_TRUE(
      builder.AddEquivalenceClass({0, 1, 2}, {100, 100, 100}).ok());
  Result<JoinGraph> graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  // All predicates join on the same attribute: one shared class.
  const std::vector<int> classes(graph->num_predicates(), 0);

  Result<InterestingOrdersResult> result =
      OptimizeWithInterestingOrders(*catalog, *graph, classes);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->sorts_avoided, 1) << result->explain;

  const float plain = PlainSortMergeCost(*catalog, *graph);
  EXPECT_LT(result->cost, plain) << result->explain;
  EXPECT_NE(result->explain.find("pre-sorted"), std::string::npos)
      << result->explain;
}

TEST(InterestingOrdersTest, NeverWorseThanPlainSortMerge) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto instance = MakeRandomInstance(8, seed + 50);
    // Group predicates into two attribute classes arbitrarily.
    std::vector<int> classes(instance.graph.num_predicates());
    for (size_t p = 0; p < classes.size(); ++p) classes[p] = p % 2;
    Result<InterestingOrdersResult> result = OptimizeWithInterestingOrders(
        instance.catalog, instance.graph, classes);
    ASSERT_TRUE(result.ok());
    const float plain = PlainSortMergeCost(instance.catalog, instance.graph);
    EXPECT_LE(result->cost, plain * (1 + 1e-4)) << "seed " << seed;
  }
}

TEST(InterestingOrdersTest, CoarserClassesNeverIncreaseCost) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto instance = MakeRandomInstance(8, seed + 90);
    Result<InterestingOrdersResult> fine = OptimizeWithInterestingOrders(
        instance.catalog, instance.graph,
        IdentityPredicateClasses(instance.graph));
    const std::vector<int> one_class(instance.graph.num_predicates(), 0);
    Result<InterestingOrdersResult> coarse = OptimizeWithInterestingOrders(
        instance.catalog, instance.graph, one_class);
    ASSERT_TRUE(fine.ok());
    ASSERT_TRUE(coarse.ok());
    EXPECT_LE(coarse->cost, fine->cost * (1 + 1e-4)) << "seed " << seed;
  }
}

TEST(InterestingOrdersTest, SortClassAnnotationsAreConsistent) {
  Result<Catalog> catalog =
      Catalog::FromCardinalities({500, 500, 500, 500});
  ASSERT_TRUE(catalog.ok());
  JoinSpecBuilder builder(4);
  ASSERT_TRUE(builder.AddEquivalenceClass({0, 1, 2, 3},
                                          {50, 50, 50, 50})
                  .ok());
  Result<JoinGraph> graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  const std::vector<int> classes(graph->num_predicates(), 0);
  Result<InterestingOrdersResult> result =
      OptimizeWithInterestingOrders(*catalog, *graph, classes);
  ASSERT_TRUE(result.ok());
  std::function<void(const PlanNode&)> check = [&](const PlanNode& node) {
    if (node.is_leaf()) {
      EXPECT_EQ(node.sort_class, -1);
      return;
    }
    if (node.algorithm == JoinAlgorithm::kSortMerge) {
      EXPECT_EQ(node.sort_class, 0);
    } else {
      EXPECT_EQ(node.sort_class, -1);
    }
    check(*node.left);
    check(*node.right);
  };
  check(result->plan.root());
}

TEST(InterestingOrdersTest, ProductsHandled) {
  // Disconnected pair: the only join is a product; cost is both sort terms
  // (kappa_sm's treatment) and the output is unordered.
  Result<Catalog> catalog = Catalog::FromCardinalities({10, 20});
  ASSERT_TRUE(catalog.ok());
  const JoinGraph graph(2);
  Result<InterestingOrdersResult> result = OptimizeWithInterestingOrders(
      *catalog, graph, IdentityPredicateClasses(graph));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan.root().algorithm,
            JoinAlgorithm::kCartesianProduct);
  EXPECT_NEAR(result->cost, Aux(10) + Aux(20), 1e-3);
}

TEST(InterestingOrdersTest, RejectsBadInput) {
  const auto instance = MakeRandomInstance(5, 1);
  std::vector<int> wrong_size(instance.graph.num_predicates() + 1, 0);
  EXPECT_FALSE(OptimizeWithInterestingOrders(instance.catalog,
                                             instance.graph, wrong_size)
                   .ok());
  std::vector<int> bad_class(instance.graph.num_predicates(), -1);
  EXPECT_FALSE(OptimizeWithInterestingOrders(instance.catalog,
                                             instance.graph, bad_class)
                   .ok());
  const JoinGraph mismatched(4);
  EXPECT_FALSE(OptimizeWithInterestingOrders(
                   instance.catalog, mismatched,
                   IdentityPredicateClasses(mismatched))
                   .ok());
}

TEST(InterestingOrdersTest, ReuseCanChangeTheWinningShape) {
  // A star joined entirely on the hub key: with order reuse, chaining
  // merges on the shared class (keeping the sorted stream) is cheap; the
  // chosen plan must exploit at least one pre-sorted input and beat the
  // order-oblivious optimum.
  Result<Catalog> catalog =
      Catalog::FromCardinalities({2000, 2000, 2000, 2000, 50});
  ASSERT_TRUE(catalog.ok());
  JoinSpecBuilder builder(5);
  ASSERT_TRUE(builder
                  .AddEquivalenceClass({0, 1, 2, 3, 4},
                                       {100, 100, 100, 100, 50})
                  .ok());
  Result<JoinGraph> graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  const std::vector<int> classes(graph->num_predicates(), 0);
  Result<InterestingOrdersResult> result =
      OptimizeWithInterestingOrders(*catalog, *graph, classes);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->sorts_avoided, 2) << result->explain;
  EXPECT_LT(result->cost, PlainSortMergeCost(*catalog, *graph));
}

}  // namespace
}  // namespace blitz
