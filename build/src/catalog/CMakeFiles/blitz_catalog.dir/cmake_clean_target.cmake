file(REMOVE_RECURSE
  "libblitz_catalog.a"
)
