#ifndef BLITZ_BENCHLIB_BENCH_DIFF_H_
#define BLITZ_BENCHLIB_BENCH_DIFF_H_

#include <string>
#include <string_view>
#include <vector>

#include "benchlib/bench_json.h"

namespace blitz {

/// Regression-gate thresholds for DiffBenchReports. The defaults suit an
/// interactive run on a quiet machine; CI passes a much looser max_ratio
/// (shared-runner noise on sub-millisecond points easily exceeds 2x).
struct BenchDiffOptions {
  /// A time-like point regresses when candidate > baseline * max_ratio.
  double max_ratio = 1.15;

  /// Noise floor: points whose baseline AND candidate values are both below
  /// this (in the point's own unit) are never flagged — timer jitter
  /// dominates tiny measurements regardless of ratio.
  double min_value = 0.05;

  /// Also flag time-like points that *improved* beyond 1/max_ratio
  /// (reported, never a failure) so baseline refreshes are suggested.
  bool note_improvements = true;
};

/// One compared point.
struct BenchDiffEntry {
  std::string key;
  std::string unit;
  double baseline = 0;
  double candidate = 0;
  double ratio = 1.0;  ///< candidate / baseline (1.0 when baseline == 0).
  bool regressed = false;
  bool improved = false;
  bool below_noise_floor = false;
};

/// The comparator's verdict over two reports.
struct BenchDiffResult {
  std::vector<BenchDiffEntry> entries;      ///< Shared time-like keys.
  std::vector<std::string> missing_keys;    ///< In baseline, not candidate.
  std::vector<std::string> new_keys;        ///< In candidate, not baseline.
  int regressions = 0;
  int improvements = 0;

  bool has_regression() const { return regressions > 0; }

  /// One line per compared point plus a verdict summary.
  std::string ToString() const;
};

/// True for the units bench_diff regression-gates ("ms", "us", "ns",
/// "seconds", "s"); other units are contextual and never compared.
bool IsTimeUnit(std::string_view unit);

/// Compares every time-like point the two reports share. A key that
/// disappeared from the candidate is recorded in missing_keys (not a
/// regression by itself — bench shape changes are reviewed with the code);
/// unit mismatches on a shared key are treated as missing.
BenchDiffResult DiffBenchReports(const BenchReport& baseline,
                                 const BenchReport& candidate,
                                 const BenchDiffOptions& options = {});

}  // namespace blitz

#endif  // BLITZ_BENCHLIB_BENCH_DIFF_H_
