#ifndef BLITZ_EXEC_RELATION_H_
#define BLITZ_EXEC_RELATION_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/status.h"

namespace blitz {

/// An in-memory base relation for the execution engine. Storage is columnar:
/// one join-key column per predicate incident on the relation, identified by
/// the predicate's index in JoinGraph::predicates(). (Payload columns are
/// irrelevant to join-order validation and are omitted.)
class ExecTable {
 public:
  ExecTable(int relation_index, std::uint32_t num_rows)
      : relation_index_(relation_index), num_rows_(num_rows) {}

  int relation_index() const { return relation_index_; }
  std::uint32_t num_rows() const { return num_rows_; }

  /// Attaches the join-key column for predicate `predicate_id`; the column
  /// must have exactly num_rows() values and must not already exist.
  Status AddJoinColumn(int predicate_id, std::vector<std::uint32_t> values);

  bool HasColumn(int predicate_id) const;

  /// The join-key column for `predicate_id`; the column must exist.
  const std::vector<std::uint32_t>& Column(int predicate_id) const;

 private:
  int relation_index_;
  std::uint32_t num_rows_;
  std::vector<std::pair<int, std::vector<std::uint32_t>>> columns_;
};

}  // namespace blitz

#endif  // BLITZ_EXEC_RELATION_H_
