#include "core/instrumentation.h"

#include <gtest/gtest.h>

namespace blitz {
namespace {

TEST(InstrumentationTest, NoInstrumentationIsDisabled) {
  EXPECT_FALSE(NoInstrumentation::kEnabled);
  NoInstrumentation instr;
  instr.OnSubsetVisited();  // must compile and do nothing
  instr.OnLoopIteration();
}

TEST(InstrumentationTest, CountingIncrements) {
  CountingInstrumentation instr;
  instr.OnSubsetVisited();
  instr.OnLoopIteration();
  instr.OnLoopIteration();
  instr.OnOperandPass();
  instr.OnKappa2Evaluated();
  instr.OnImprovement();
  instr.OnThresholdSkip();
  EXPECT_EQ(instr.subsets_visited, 1u);
  EXPECT_EQ(instr.loop_iterations, 2u);
  EXPECT_EQ(instr.operand_passes, 1u);
  EXPECT_EQ(instr.kappa2_evaluations, 1u);
  EXPECT_EQ(instr.improvements, 1u);
  EXPECT_EQ(instr.threshold_skips, 1u);
}

TEST(InstrumentationTest, Accumulate) {
  CountingInstrumentation a;
  a.OnLoopIteration();
  CountingInstrumentation b;
  b.OnLoopIteration();
  b.OnImprovement();
  a += b;
  EXPECT_EQ(a.loop_iterations, 2u);
  EXPECT_EQ(a.improvements, 1u);
}

TEST(InstrumentationTest, ToStringMentionsAllCounters) {
  CountingInstrumentation instr;
  instr.OnKappa2Evaluated();
  const std::string s = instr.ToString();
  EXPECT_NE(s.find("kappa2=1"), std::string::npos) << s;
  EXPECT_NE(s.find("subsets=0"), std::string::npos) << s;
}

TEST(InstrumentationTest, ToStringRendersEveryFieldWithItsValue) {
  CountingInstrumentation instr;
  instr.subsets_visited = 1;
  instr.loop_iterations = 22;
  instr.operand_passes = 333;
  instr.kappa2_evaluations = 4444;
  instr.improvements = 55555;
  instr.threshold_skips = 666666;
  const std::string s = instr.ToString();
  EXPECT_NE(s.find("subsets=1"), std::string::npos) << s;
  EXPECT_NE(s.find("loop_iters=22"), std::string::npos) << s;
  EXPECT_NE(s.find("operand_passes=333"), std::string::npos) << s;
  EXPECT_NE(s.find("kappa2=4444"), std::string::npos) << s;
  EXPECT_NE(s.find("improvements=55555"), std::string::npos) << s;
  EXPECT_NE(s.find("threshold_skips=666666"), std::string::npos) << s;
}

TEST(InstrumentationTest, ToStringHandlesLargeCounts) {
  CountingInstrumentation instr;
  // Larger than 2^32: the %llu formatting must not truncate.
  instr.loop_iterations = 0x1'0000'0001ULL;
  EXPECT_NE(instr.ToString().find("loop_iters=4294967297"),
            std::string::npos);
}

TEST(InstrumentationTest, AccumulateCoversEveryFieldAndChains) {
  CountingInstrumentation a;
  a.subsets_visited = 1;
  a.loop_iterations = 2;
  a.operand_passes = 3;
  a.kappa2_evaluations = 4;
  a.improvements = 5;
  a.threshold_skips = 6;
  CountingInstrumentation b = a;
  b.threshold_skips = 10;
  CountingInstrumentation c;
  // operator+= returns *this, so accumulation chains.
  (c += a) += b;
  EXPECT_EQ(c.subsets_visited, 2u);
  EXPECT_EQ(c.loop_iterations, 4u);
  EXPECT_EQ(c.operand_passes, 6u);
  EXPECT_EQ(c.kappa2_evaluations, 8u);
  EXPECT_EQ(c.improvements, 10u);
  EXPECT_EQ(c.threshold_skips, 16u);
}

TEST(InstrumentationTest, AccumulateFromDefaultIsIdentity) {
  CountingInstrumentation a;
  a.OnImprovement();
  a.OnThresholdSkip();
  const CountingInstrumentation before = a;
  a += CountingInstrumentation{};
  EXPECT_EQ(a.improvements, before.improvements);
  EXPECT_EQ(a.threshold_skips, before.threshold_skips);
  EXPECT_EQ(a.loop_iterations, 0u);
}

}  // namespace
}  // namespace blitz
