// S4: regression replay of the failure corpus. Every `tests/corpus/*.bjq`
// the fuzzer ever minimized and committed is re-run through the full
// differential configuration grid, so a bug fixed once stays fixed. An
// empty (or absent) corpus passes — there is simply nothing to replay yet.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "testing/corpus.h"
#include "testing/differential.h"
#include "testing/fuzzer.h"

#ifndef BLITZ_CORPUS_DIR
#define BLITZ_CORPUS_DIR "tests/corpus"
#endif

namespace blitz {
namespace {

using ::blitz::fuzz::CaseVerdict;
using ::blitz::fuzz::DifferentialOptions;
using ::blitz::fuzz::FuzzCase;
using ::blitz::fuzz::ListCorpusFiles;
using ::blitz::fuzz::LoadCorpusCase;
using ::blitz::fuzz::RunDifferentialCase;

TEST(CorpusReplayTest, EveryCorpusCaseRunsCleanUnderAllConfigs) {
  const std::vector<std::string> files = ListCorpusFiles(BLITZ_CORPUS_DIR);
  if (files.empty()) {
    GTEST_SKIP() << "corpus at " << BLITZ_CORPUS_DIR
                 << " is empty; nothing to replay";
  }
  DifferentialOptions options;
  for (const std::string& path : files) {
    Result<FuzzCase> c = LoadCorpusCase(path);
    ASSERT_TRUE(c.ok()) << path << ": " << c.status().ToString();
    const CaseVerdict verdict = RunDifferentialCase(*c, options);
    EXPECT_TRUE(verdict.passed) << path << ": " << verdict.ToString();
  }
}

TEST(CorpusReplayTest, MissingDirectoryIsEmptyNotError) {
  EXPECT_TRUE(
      ListCorpusFiles(std::string(BLITZ_CORPUS_DIR) + "/no-such-subdir")
          .empty());
}

TEST(CorpusReplayTest, WriteLoadRoundTripReproducesCase) {
  // What the fuzzer writes on a mismatch must come back as the same
  // problem — otherwise the committed repro regresses silently.
  const fuzz::FuzzerOptions generator{/*seed=*/20260807, 3, 7};
  Result<FuzzCase> original = fuzz::GenerateCase(generator, 1);
  ASSERT_TRUE(original.ok());
  const std::string dir = ::testing::TempDir() + "blitz_corpus_roundtrip";
  Result<std::string> path = fuzz::WriteCorpusCase(
      dir, *original, CostModelKind::kNaive, "round-trip test");
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  const std::vector<std::string> listed = ListCorpusFiles(dir);
  ASSERT_EQ(listed.size(), 1u);
  EXPECT_EQ(listed[0], *path);
  Result<FuzzCase> loaded = LoadCorpusCase(*path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->label, original->label);
  ASSERT_EQ(loaded->catalog.num_relations(),
            original->catalog.num_relations());
  for (int r = 0; r < original->catalog.num_relations(); ++r) {
    EXPECT_DOUBLE_EQ(loaded->catalog.cardinality(r),
                     original->catalog.cardinality(r));
  }
  ASSERT_EQ(loaded->graph.num_predicates(),
            original->graph.num_predicates());
  const CaseVerdict verdict = RunDifferentialCase(*loaded, DifferentialOptions{});
  EXPECT_TRUE(verdict.passed) << verdict.ToString();
}

}  // namespace
}  // namespace blitz
