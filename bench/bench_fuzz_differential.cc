// Cost of the differential harness itself: how long one fuzz case takes to
// generate and to drive through the full configuration grid + oracle trio,
// broken down by case size. This bounds what a CI time budget buys (cases
// per minute per sanitizer) and catches harness slowdowns before they
// silently shrink fuzz coverage.
//
// Seeding is shared with the fuzzer binary: case i here is exactly
// `fuzz_blitzsplit --seed=S` case i (both are pure functions of (S, i) via
// common/rng.h DeriveSeed), so any slow or failing case found while
// benchmarking is replayable in the harness as-is.
//
// Environment knobs: BLITZ_FUZZ_SEED (default 20260807), BLITZ_FUZZ_CASES
// (default 24), BLITZ_FUZZ_MIN_N / BLITZ_FUZZ_MAX_N (default 4/11),
// BLITZ_FUZZ_BRUTE_MAX_N (default 10).

#include <cstdio>
#include <map>

#include "benchlib/table_out.h"
#include "benchlib/timing.h"
#include "common/check.h"
#include "common/strings.h"
#include "testing/differential.h"
#include "testing/fuzzer.h"

namespace blitz {
namespace {

int Run() {
  const std::uint64_t seed = static_cast<std::uint64_t>(
      BenchEnvInt("BLITZ_FUZZ_SEED", 20260807));
  const int cases = BenchEnvInt("BLITZ_FUZZ_CASES", 24);
  fuzz::FuzzerOptions generator;
  generator.seed = seed;
  generator.min_relations = BenchEnvInt("BLITZ_FUZZ_MIN_N", 4);
  generator.max_relations = BenchEnvInt("BLITZ_FUZZ_MAX_N", 11);
  const Status valid = generator.Validate();
  if (!valid.ok()) {
    std::fprintf(stderr, "bad generator config: %s\n",
                 valid.ToString().c_str());
    return 1;
  }
  fuzz::DifferentialOptions diff;
  diff.brute_force_max_n = BenchEnvInt("BLITZ_FUZZ_BRUTE_MAX_N", 10);

  std::printf(
      "Differential-harness throughput: seed=%llu, %d cases, n in [%d, %d]\n"
      "(per-case time = config grid + brute-force/re-coster/DPccp oracles)\n\n",
      static_cast<unsigned long long>(seed), cases, generator.min_relations,
      generator.max_relations);

  struct Bucket {
    int cases = 0;
    double generate_seconds = 0;
    double check_seconds = 0;
  };
  std::map<int, Bucket> by_size;

  for (int i = 0; i < cases; ++i) {
    Result<fuzz::FuzzCase> c =
        fuzz::GenerateCase(generator, static_cast<std::uint64_t>(i));
    BLITZ_CHECK(c.ok());
    const TimingResult generate = TimeIt(
        [&] {
          Result<fuzz::FuzzCase> again =
              fuzz::GenerateCase(generator, static_cast<std::uint64_t>(i));
          BLITZ_CHECK(again.ok());
        },
        /*min_seconds=*/0);
    bool passed = true;
    const TimingResult check = TimeIt(
        [&] { passed = RunDifferentialCase(*c, diff).passed; },
        /*min_seconds=*/0);
    if (!passed) {
      std::fprintf(stderr,
                   "MISMATCH on %s — replay: fuzz_blitzsplit --seed=%llu "
                   "--iters=%d --min-n=%d --max-n=%d\n",
                   c->label.c_str(), static_cast<unsigned long long>(seed),
                   i + 1, generator.min_relations, generator.max_relations);
      return 1;
    }
    Bucket& bucket = by_size[c->spec.num_relations];
    ++bucket.cases;
    bucket.generate_seconds += generate.seconds_per_run;
    bucket.check_seconds += check.seconds_per_run;
  }

  TextTable out;
  out.SetHeader({"n", "cases", "generate (ms)", "full grid+oracles (ms)"});
  double total = 0;
  for (const auto& [n, bucket] : by_size) {
    out.AddRow({StrFormat("%d", n), StrFormat("%d", bucket.cases),
                StrFormat("%.3f", bucket.generate_seconds * 1e3 /
                                      bucket.cases),
                StrFormat("%.2f",
                          bucket.check_seconds * 1e3 / bucket.cases)});
    total += bucket.generate_seconds + bucket.check_seconds;
  }
  std::printf("%s", out.ToString().c_str());
  std::printf("\ntotal %.2fs for %d cases (%.1f cases/minute)\n", total,
              cases, total > 0 ? cases * 60.0 / total : 0.0);
  return 0;
}

}  // namespace
}  // namespace blitz

int main() { return blitz::Run(); }
