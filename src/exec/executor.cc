#include "exec/executor.h"

#include <algorithm>

#include "common/check.h"

namespace blitz {

namespace {

RowSet ExecuteNode(const PlanNode& node, const std::vector<ExecTable>& tables,
                   const JoinGraph& graph, std::vector<NodeStats>* stats) {
  if (node.is_leaf()) {
    return ScanTable(tables[node.relation()]);
  }
  // Record stats in pre-order (reserve the slot before recursing).
  const size_t stat_index = stats->size();
  stats->push_back(NodeStats{node.set, 0, node.algorithm});
  const RowSet lhs = ExecuteNode(*node.left, tables, graph, stats);
  const RowSet rhs = ExecuteNode(*node.right, tables, graph, stats);
  const std::vector<BoundPredicate> predicates =
      BindSpanningPredicates(graph, node.left->set, node.right->set);
  JoinAlgorithm algorithm = node.algorithm;
  if (algorithm == JoinAlgorithm::kCartesianProduct && !predicates.empty()) {
    // The plan was annotated against a different graph; fall back safely.
    algorithm = JoinAlgorithm::kUnspecified;
  }
  RowSet out = JoinRowSets(lhs, rhs, predicates, algorithm, tables);
  (*stats)[stat_index].output_rows = out.num_rows();
  return out;
}

}  // namespace

Result<ExecutionResult> ExecutePlan(const Plan& plan,
                                    const std::vector<ExecTable>& tables,
                                    const JoinGraph& graph) {
  if (plan.empty()) return Status::InvalidArgument("empty plan");
  bool tables_ok = true;
  plan.relations().ForEach([&](int r) {
    if (r >= static_cast<int>(tables.size()) ||
        tables[r].relation_index() != r) {
      tables_ok = false;
    }
  });
  if (!tables_ok) {
    return Status::InvalidArgument(
        "tables vector does not cover the plan's relations (tables[i] must "
        "be relation i)");
  }
  ExecutionResult result;
  result.result = ExecuteNode(plan.root(), tables, graph, &result.node_stats);
  return result;
}

std::vector<std::vector<std::uint32_t>> ResultFingerprint(const RowSet& rows) {
  std::vector<std::vector<std::uint32_t>> fingerprint = rows.rows;
  std::sort(fingerprint.begin(), fingerprint.end());
  return fingerprint;
}

}  // namespace blitz
