# Empty compiler generated dependencies file for blitz_core.
# This may be replaced when dependencies are built.
