# Empty dependencies file for relset_test.
# This may be replaced when dependencies are built.
