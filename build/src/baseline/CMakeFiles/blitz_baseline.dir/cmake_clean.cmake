file(REMOVE_RECURSE
  "CMakeFiles/blitz_baseline.dir/bruteforce.cc.o"
  "CMakeFiles/blitz_baseline.dir/bruteforce.cc.o.d"
  "CMakeFiles/blitz_baseline.dir/dpccp.cc.o"
  "CMakeFiles/blitz_baseline.dir/dpccp.cc.o.d"
  "CMakeFiles/blitz_baseline.dir/dpsize.cc.o"
  "CMakeFiles/blitz_baseline.dir/dpsize.cc.o.d"
  "CMakeFiles/blitz_baseline.dir/dpsub.cc.o"
  "CMakeFiles/blitz_baseline.dir/dpsub.cc.o.d"
  "CMakeFiles/blitz_baseline.dir/greedy.cc.o"
  "CMakeFiles/blitz_baseline.dir/greedy.cc.o.d"
  "CMakeFiles/blitz_baseline.dir/hybrid.cc.o"
  "CMakeFiles/blitz_baseline.dir/hybrid.cc.o.d"
  "CMakeFiles/blitz_baseline.dir/leftdeep.cc.o"
  "CMakeFiles/blitz_baseline.dir/leftdeep.cc.o.d"
  "CMakeFiles/blitz_baseline.dir/local_search.cc.o"
  "CMakeFiles/blitz_baseline.dir/local_search.cc.o.d"
  "CMakeFiles/blitz_baseline.dir/random_plans.cc.o"
  "CMakeFiles/blitz_baseline.dir/random_plans.cc.o.d"
  "CMakeFiles/blitz_baseline.dir/topdown.cc.o"
  "CMakeFiles/blitz_baseline.dir/topdown.cc.o.d"
  "libblitz_baseline.a"
  "libblitz_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blitz_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
