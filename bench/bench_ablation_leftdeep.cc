// Ablation for Section 6.2's left-deep comparison: "ordinarily, the kappa''
// execution count is larger for bushy than for left-deep search by only a
// factor of (ln2/2) n / ln n (about 2 when n = 15)" — bushy search visits
// ~3^n splits where left-deep visits ~n 2^n, but with nested-if
// short-circuiting the *costed* splits are far closer.
//
// We measure blitzsplit's kappa'' count and the left-deep DP's enumeration
// count across workloads, alongside wall-clock time for both searches and
// the resulting plan quality gap.

#include <cmath>
#include <cstdio>

#include "baseline/leftdeep.h"
#include "benchlib/table_out.h"
#include "benchlib/timing.h"
#include "common/math_util.h"
#include "common/strings.h"
#include "core/optimizer.h"
#include "query/workload.h"

namespace blitz {
namespace {

int Run() {
  const int n = BenchEnvInt("BLITZ_LD_N", 15);
  const double min_seconds = BenchMinSeconds(0.05);
  const double predicted_ratio = (0.5 * std::log(2.0)) * n / std::log(n);
  std::printf(
      "Left-deep vs bushy ablation at n = %d\n"
      "paper's predicted bushy/left-deep kappa'' ratio: (ln2/2)n/ln n = "
      "%.2f\n\n",
      n, predicted_ratio);

  TextTable out;
  out.SetHeader({"topology", "mean card", "bushy kappa''", "LD enumerated",
                 "ratio", "bushy ms", "LD ms", "LD cost / bushy cost"});

  for (const Topology topology :
       {Topology::kChain, Topology::kCyclePlus3, Topology::kStar,
        Topology::kClique}) {
    for (const double mean : {21.5, 1e4}) {
      WorkloadSpec spec;
      spec.num_relations = n;
      spec.topology = topology;
      spec.mean_cardinality = mean;
      spec.variability = 0.5;
      Result<Workload> workload = MakeWorkload(spec);
      if (!workload.ok()) continue;

      OptimizerOptions options;
      options.count_operations = true;
      Result<OptimizeOutcome> bushy =
          OptimizeJoin(workload->catalog, workload->graph, options);
      if (!bushy.ok()) continue;

      Result<LeftDeepResult> left_deep = OptimizeLeftDeep(
          workload->catalog, workload->graph, CostModelKind::kNaive);
      if (!left_deep.ok()) continue;

      OptimizerOptions plain;
      const TimingResult bushy_time = TimeIt(
          [&] {
            Result<OptimizeOutcome> r =
                OptimizeJoin(workload->catalog, workload->graph, plain);
            (void)r;
          },
          min_seconds);
      const TimingResult ld_time = TimeIt(
          [&] {
            Result<LeftDeepResult> r = OptimizeLeftDeep(
                workload->catalog, workload->graph, CostModelKind::kNaive);
            (void)r;
          },
          min_seconds);

      const double ratio =
          static_cast<double>(bushy->counters.kappa2_evaluations) /
          static_cast<double>(left_deep->joins_enumerated);
      out.AddRow(
          {TopologyToString(topology), StrFormat("%.3g", mean),
           StrFormat("%llu", static_cast<unsigned long long>(
                                 bushy->counters.kappa2_evaluations)),
           StrFormat("%llu", static_cast<unsigned long long>(
                                 left_deep->joins_enumerated)),
           StrFormat("%.2f", ratio),
           StrFormat("%.1f", bushy_time.seconds_per_run * 1e3),
           StrFormat("%.1f", ld_time.seconds_per_run * 1e3),
           StrFormat("%.3f", left_deep->cost / bushy->cost)});
    }
  }
  std::printf("%s\n", out.ToString().c_str());
  std::printf(
      "Reading: confining search to left-deep vines buys only modest\n"
      "savings (the ratio column) and can cost plan quality (last column\n"
      "> 1 means the left-deep optimum is worse than the bushy one).\n");
  return 0;
}

}  // namespace
}  // namespace blitz

int main() { return blitz::Run(); }
