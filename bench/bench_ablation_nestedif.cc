// Ablation for the Section 4.2 nested-if optimization: replacing the single
// if in find_best_split with nested ifs predicates kappa'' evaluation on the
// operand-cost comparison, cutting its execution count from 3^n towards
// (ln2/2) n 2^n. This bench times the optimizer with the nested ifs on and
// off across cost models and cardinalities; the effect should be largest
// for expensive kappa'' (kappa_dnl / kappa_sm) at high mean cardinality and
// smallest at mean cardinality 1 (Section 6.2's explanation of the
// "chaise-longue" shape).

#include <cstdio>

#include "benchlib/table_out.h"
#include "benchlib/timing.h"
#include "common/strings.h"
#include "core/optimizer.h"
#include "query/workload.h"

namespace blitz {
namespace {

int Run() {
  const int n = BenchEnvInt("BLITZ_NESTEDIF_N", 14);
  const double min_seconds = BenchMinSeconds(0.05);
  std::printf("Nested-if ablation at n = %d (chain topology)\n\n", n);

  TextTable out;
  out.SetHeader({"model", "mean card", "nested (ms)", "flat (ms)",
                 "speedup", "kappa'' nested", "kappa'' flat"});

  for (const CostModelKind model :
       {CostModelKind::kNaive, CostModelKind::kSortMerge,
        CostModelKind::kDiskNestedLoops, CostModelKind::kMinSmDnl}) {
    for (const double mean : {1.0, 100.0, 1e6}) {
      WorkloadSpec spec;
      spec.num_relations = n;
      spec.topology = Topology::kChain;
      spec.mean_cardinality = mean;
      spec.variability = 0;
      Result<Workload> workload = MakeWorkload(spec);
      if (!workload.ok()) continue;

      OptimizerOptions nested;
      nested.cost_model = model;
      OptimizerOptions flat = nested;
      flat.nested_ifs = false;

      const TimingResult nested_time = TimeIt(
          [&] {
            Result<OptimizeOutcome> r =
                OptimizeJoin(workload->catalog, workload->graph, nested);
            (void)r;
          },
          min_seconds);
      const TimingResult flat_time = TimeIt(
          [&] {
            Result<OptimizeOutcome> r =
                OptimizeJoin(workload->catalog, workload->graph, flat);
            (void)r;
          },
          min_seconds);

      OptimizerOptions count_nested = nested;
      count_nested.count_operations = true;
      OptimizerOptions count_flat = flat;
      count_flat.count_operations = true;
      Result<OptimizeOutcome> cn =
          OptimizeJoin(workload->catalog, workload->graph, count_nested);
      Result<OptimizeOutcome> cf =
          OptimizeJoin(workload->catalog, workload->graph, count_flat);
      if (!cn.ok() || !cf.ok()) continue;

      out.AddRow(
          {CostModelKindToString(model), StrFormat("%.3g", mean),
           StrFormat("%.1f", nested_time.seconds_per_run * 1e3),
           StrFormat("%.1f", flat_time.seconds_per_run * 1e3),
           StrFormat("%.2fx", flat_time.seconds_per_run /
                                  nested_time.seconds_per_run),
           StrFormat("%llu", static_cast<unsigned long long>(
                                 cn->counters.kappa2_evaluations)),
           StrFormat("%llu", static_cast<unsigned long long>(
                                 cf->counters.kappa2_evaluations))});
    }
  }
  std::printf("%s\n", out.ToString().c_str());
  return 0;
}

}  // namespace
}  // namespace blitz

int main() { return blitz::Run(); }
