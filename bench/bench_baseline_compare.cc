// Cross-method comparison (the Section 2 / Section 7 context): blitzsplit's
// bushy-with-products search against the restricted and heuristic
// alternatives it argues against or complements —
//   * left-deep DP with products (System R-style space),
//   * connected-subgraph bushy DP without products (the common exclusion),
//   * DPsize (Starburst-style size-driven enumeration, O(4^n) enumerator),
//   * greedy (GOO-style),
//   * iterative improvement and simulated annealing [Ste96],
//   * uniform random sampling [GLPK94-inspired].
// For each we report wall-clock time and plan cost relative to the
// blitzsplit optimum.

#include <cstdio>
#include <functional>
#include <string>

#include "baseline/dpccp.h"
#include "baseline/dpsize.h"
#include "baseline/dpsub.h"
#include "baseline/greedy.h"
#include "baseline/hybrid.h"
#include "baseline/leftdeep.h"
#include "baseline/local_search.h"
#include "baseline/random_plans.h"
#include "baseline/topdown.h"
#include "benchlib/table_out.h"
#include "benchlib/timing.h"
#include "common/strings.h"
#include "core/optimizer.h"
#include "query/workload.h"

namespace blitz {
namespace {

struct MethodResult {
  bool ok = false;
  double cost = 0;
  double seconds = 0;
};

int Run() {
  const int n = BenchEnvInt("BLITZ_COMPARE_N", 13);
  const double min_seconds = BenchMinSeconds(0.05);
  std::printf(
      "Optimizer comparison at n = %d (cost ratios relative to the\n"
      "bushy-with-products optimum found by blitzsplit; naive cost model)\n\n",
      n);

  for (const Topology topology :
       {Topology::kChain, Topology::kStar, Topology::kClique}) {
    for (const double mean : {21.5, 1e4}) {
      WorkloadSpec spec;
      spec.num_relations = n;
      spec.topology = topology;
      spec.mean_cardinality = mean;
      spec.variability = 0.5;
      Result<Workload> workload = MakeWorkload(spec);
      if (!workload.ok()) continue;
      const Catalog& catalog = workload->catalog;
      const JoinGraph& graph = workload->graph;

      // Reference: blitzsplit.
      double reference_cost = 0;
      const TimingResult blitz_time = TimeIt(
          [&] {
            Result<OptimizeOutcome> r =
                OptimizeJoin(catalog, graph, OptimizerOptions{});
            if (r.ok()) reference_cost = r->cost;
          },
          min_seconds);

      auto time_method =
          [&](const std::function<MethodResult()>& fn) -> MethodResult {
        MethodResult result;
        const TimingResult timing = TimeIt(
            [&] { result = fn(); }, min_seconds);
        result.seconds = timing.seconds_per_run;
        return result;
      };

      const MethodResult left_deep = time_method([&] {
        Result<LeftDeepResult> r =
            OptimizeLeftDeep(catalog, graph, CostModelKind::kNaive);
        return r.ok() ? MethodResult{true, r->cost, 0} : MethodResult{};
      });
      const MethodResult dpsub = time_method([&] {
        Result<DpSubResult> r =
            OptimizeDpSubNoProducts(catalog, graph, CostModelKind::kNaive);
        return r.ok() ? MethodResult{true, r->cost, 0} : MethodResult{};
      });
      const MethodResult dpsize = time_method([&] {
        Result<DpSizeResult> r = OptimizeDpSize(
            catalog, graph, CostModelKind::kNaive, DpSizeOptions{});
        return r.ok() ? MethodResult{true, r->cost, 0} : MethodResult{};
      });
      const MethodResult greedy = time_method([&] {
        Result<GreedyResult> r =
            OptimizeGreedy(catalog, graph, CostModelKind::kNaive,
                           GreedyCriterion::kMinOutputCardinality);
        return r.ok() ? MethodResult{true, r->cost, 0} : MethodResult{};
      });
      const MethodResult ii = time_method([&] {
        LocalSearchOptions options;
        options.max_moves = 4000;
        Result<LocalSearchResult> r = OptimizeIterativeImprovement(
            catalog, graph, CostModelKind::kNaive, options);
        return r.ok() ? MethodResult{true, r->cost, 0} : MethodResult{};
      });
      const MethodResult sa = time_method([&] {
        LocalSearchOptions options;
        options.max_moves = 4000;
        Result<LocalSearchResult> r = OptimizeSimulatedAnnealing(
            catalog, graph, CostModelKind::kNaive, options);
        return r.ok() ? MethodResult{true, r->cost, 0} : MethodResult{};
      });
      const MethodResult sampling = time_method([&] {
        Rng rng(1);
        Result<RandomSamplingResult> r = OptimizeByRandomSampling(
            catalog, graph, CostModelKind::kNaive, 1000, &rng);
        return r.ok() ? MethodResult{true, r->cost, 0} : MethodResult{};
      });
      const MethodResult dpccp = time_method([&] {
        Result<DpCcpResult> r =
            OptimizeDpCcp(catalog, graph, CostModelKind::kNaive);
        return r.ok() ? MethodResult{true, r->cost, 0} : MethodResult{};
      });
      const MethodResult topdown = time_method([&] {
        Result<TopDownResult> r = OptimizeTopDown(
            catalog, graph, CostModelKind::kNaive, TopDownOptions{});
        return r.ok() ? MethodResult{true, r->cost, 0} : MethodResult{};
      });
      const MethodResult hybrid = time_method([&] {
        HybridOptions options;
        options.block_size = 10;
        options.restarts = 2;
        Result<HybridResult> r = OptimizeHybrid(catalog, graph, options);
        return r.ok() ? MethodResult{true, r->cost, 0} : MethodResult{};
      });

      std::printf("--- topology %s, mean cardinality %.3g ---\n",
                  TopologyToString(topology), mean);
      TextTable out;
      out.SetHeader({"method", "time (ms)", "cost / optimal"});
      out.AddRow({"blitzsplit (bushy+products)",
                  StrFormat("%.1f", blitz_time.seconds_per_run * 1e3),
                  "1.000"});
      auto add = [&](const char* name, const MethodResult& m) {
        out.AddRow({name,
                    m.ok ? StrFormat("%.1f", m.seconds * 1e3) : "-",
                    m.ok ? StrFormat("%.3f", m.cost / reference_cost)
                         : "failed"});
      };
      add("left-deep DP (+products)", left_deep);
      add("DPsub (no products)", dpsub);
      add("DPsize (bushy+products)", dpsize);
      add("DPccp (no products, 2006)", dpccp);
      add("top-down memo (Volcano-style)", topdown);
      add("hybrid random-blocks DP", hybrid);
      add("greedy (GOO)", greedy);
      add("iterative improvement", ii);
      add("simulated annealing", sa);
      add("random sampling (1000)", sampling);
      std::printf("%s\n", out.ToString().c_str());
    }
  }
  return 0;
}

}  // namespace
}  // namespace blitz

int main() { return blitz::Run(); }
