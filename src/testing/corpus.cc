#include "testing/corpus.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>
#include <utility>

#include "common/strings.h"
#include "textio/bjq.h"

namespace blitz::fuzz {

namespace fs = std::filesystem;

Result<std::string> WriteCorpusCase(const std::string& dir, const FuzzCase& c,
                                    CostModelKind cost_model,
                                    const std::string& note) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal(
        StrFormat("cannot create corpus dir %s: %s", dir.c_str(),
                  ec.message().c_str()));
  }
  const std::string label = c.label.empty() ? c.spec.Name() : c.label;
  const std::string path = (fs::path(dir) / (label + ".bjq")).string();

  std::string text;
  if (!note.empty()) text += "# " + note + "\n";
  text += "# replay: fuzz_blitzsplit --replay=" + path + "\n";
  text += StrFormat("# provenance: seed=%llu case=%llu (%s)\n",
                    static_cast<unsigned long long>(c.spec.seed),
                    static_cast<unsigned long long>(c.spec.case_index),
                    label.c_str());
  text += WriteBjq(ToQuerySpec(c, cost_model));

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal(StrFormat("cannot open %s", path.c_str()));
  }
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    return Status::Internal(StrFormat("short write to %s", path.c_str()));
  }
  return path;
}

std::vector<std::string> ListCorpusFiles(const std::string& dir) {
  std::vector<std::string> files;
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return files;
  for (const fs::directory_entry& entry : it) {
    if (entry.path().extension() == ".bjq") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

Result<FuzzCase> LoadCorpusCase(const std::string& path) {
  Result<QuerySpec> spec = LoadBjqFile(path);
  if (!spec.ok()) return spec.status();
  FuzzCase c;
  c.spec.num_relations = spec->catalog.num_relations();
  c.catalog = std::move(spec->catalog);
  c.graph = std::move(spec->graph);
  c.label = fs::path(path).stem().string();
  return c;
}

}  // namespace blitz::fuzz
