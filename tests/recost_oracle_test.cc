// S3: the plan re-coster oracle round-trips the plan_test.cc fixture shapes
// (bushy, left-deep, right-deep over Table 1 / Figure 3) and every plan the
// optimizer actually extracts — full plans and subset plans — against the
// DP tables that produced them.

#include <gtest/gtest.h>

#include <vector>

#include "core/optimizer.h"
#include "plan/plan.h"
#include "test_util.h"
#include "testing/oracles.h"

namespace blitz {
namespace {

using ::blitz::fuzz::CheckPlanAgainstDpTable;
using ::blitz::fuzz::OracleVerdict;
using ::blitz::fuzz::RecostPlan;
using ::blitz::fuzz::RecostResult;
using ::blitz::testing::Figure3Graph;
using ::blitz::testing::MakeRandomInstance;
using ::blitz::testing::Table1Catalog;

Plan BushyFour() {
  return Plan::Join(Plan::Join(Plan::Leaf(0), Plan::Leaf(1)),
                    Plan::Join(Plan::Leaf(2), Plan::Leaf(3)));
}

Plan LeftDeepFour() {
  return Plan::Join(
      Plan::Join(Plan::Join(Plan::Leaf(0), Plan::Leaf(1)), Plan::Leaf(2)),
      Plan::Leaf(3));
}

Plan RightDeepFour() {
  return Plan::Join(
      Plan::Leaf(0),
      Plan::Join(Plan::Leaf(1), Plan::Join(Plan::Leaf(2), Plan::Leaf(3))));
}

constexpr CostModelKind kModels[] = {CostModelKind::kNaive,
                                     CostModelKind::kSortMerge,
                                     CostModelKind::kDiskNestedLoops};

TEST(RecostOracleTest, FixtureShapesAgreeOnCardinality) {
  // Cardinality is plan-shape-invariant: all three fixture shapes over the
  // same four relations must recost to the same card, equal to the direct
  // induced-subgraph definition.
  const Catalog catalog = Table1Catalog();
  const JoinGraph graph = Figure3Graph();
  const std::vector<double> cards = {10, 20, 30, 40};
  const double expected = graph.JoinCardinality(RelSet::FirstN(4), cards);
  for (const Plan& plan : {BushyFour(), LeftDeepFour(), RightDeepFour()}) {
    for (const CostModelKind model : kModels) {
      const RecostResult r = RecostPlan(plan.root(), catalog, graph, model);
      EXPECT_NEAR(r.card, expected, 1e-9 * expected) << plan.ToString();
      EXPECT_GT(r.cost, 0.0) << plan.ToString();
    }
  }
}

TEST(RecostOracleTest, ExtractedPlanPassesAgainstItsTable) {
  const Catalog catalog = Table1Catalog();
  const JoinGraph graph = Figure3Graph();
  for (const CostModelKind model : kModels) {
    OptimizerOptions options;
    options.cost_model = model;
    Result<OptimizeOutcome> outcome = OptimizeJoin(catalog, graph, options);
    ASSERT_TRUE(outcome.ok());
    Result<Plan> plan = Plan::ExtractFromTable(outcome->table);
    ASSERT_TRUE(plan.ok());
    const OracleVerdict verdict =
        CheckPlanAgainstDpTable(*plan, catalog, graph, model, outcome->table);
    EXPECT_TRUE(verdict.ok) << verdict.message;
  }
}

TEST(RecostOracleTest, CartesianTable1PlanPasses) {
  // The pure Cartesian-product side of the worked example: an edgeless
  // graph makes every selectivity 1 and the recost a plain product.
  const Catalog catalog = Table1Catalog();
  const JoinGraph empty_graph(4);
  Result<OptimizeOutcome> outcome =
      OptimizeCartesian(catalog, OptimizerOptions{});
  ASSERT_TRUE(outcome.ok());
  Result<Plan> plan = Plan::ExtractFromTable(outcome->table);
  ASSERT_TRUE(plan.ok());
  const OracleVerdict verdict = CheckPlanAgainstDpTable(
      *plan, catalog, empty_graph, CostModelKind::kNaive, outcome->table);
  EXPECT_TRUE(verdict.ok) << verdict.message;
  const RecostResult r =
      RecostPlan(plan->root(), catalog, empty_graph, CostModelKind::kNaive);
  EXPECT_NEAR(r.card, 10.0 * 20.0 * 30.0 * 40.0, 1e-6);
}

TEST(RecostOracleTest, EverySubsetPlanPasses) {
  // Extraction works for any stored subset, and each extracted subtree is
  // the table's optimum for its set — so the oracle must accept all of
  // them, not just the root.
  const Catalog catalog = Table1Catalog();
  const JoinGraph graph = Figure3Graph();
  OptimizerOptions options;
  options.cost_model = CostModelKind::kSortMerge;
  Result<OptimizeOutcome> outcome = OptimizeJoin(catalog, graph, options);
  ASSERT_TRUE(outcome.ok());
  for (std::uint32_t word = 1; word < 16u; ++word) {
    const RelSet set = RelSet::FromWord(word);
    Result<Plan> plan = Plan::ExtractFromTable(outcome->table, set);
    ASSERT_TRUE(plan.ok()) << "set=" << word;
    const OracleVerdict verdict = CheckPlanAgainstDpTable(
        *plan, catalog, graph, CostModelKind::kSortMerge, outcome->table);
    EXPECT_TRUE(verdict.ok) << "set=" << word << ": " << verdict.message;
  }
}

TEST(RecostOracleTest, RejectsWrongPlanForTable) {
  // A structurally valid plan that is NOT the table's optimum must fail the
  // per-node cost check — the oracle can actually discriminate.
  const testing::RandomInstance instance = MakeRandomInstance(4, 77);
  OptimizerOptions options;
  Result<OptimizeOutcome> outcome =
      OptimizeJoin(instance.catalog, instance.graph, options);
  ASSERT_TRUE(outcome.ok());
  Result<Plan> best = Plan::ExtractFromTable(outcome->table);
  ASSERT_TRUE(best.ok());
  int rejected = 0;
  for (const Plan& candidate :
       {BushyFour(), LeftDeepFour(), RightDeepFour()}) {
    if (candidate.StructurallyEquals(*best)) continue;
    const OracleVerdict verdict =
        CheckPlanAgainstDpTable(candidate, instance.catalog, instance.graph,
                                CostModelKind::kNaive, outcome->table);
    if (!verdict.ok) ++rejected;
  }
  // At least one of the three shapes differs from the optimum and recosts
  // above the stored optimum (ties can legitimately pass).
  EXPECT_GE(rejected, 1);
}

TEST(RecostOracleTest, RejectsMalformedPlan) {
  // Plan::Join itself CHECK-rejects overlapping operands, so corrupt a
  // legally built plan after the fact: a root set that is not the union of
  // its children violates the structural precondition.
  const Catalog catalog = Table1Catalog();
  const JoinGraph graph = Figure3Graph();
  OptimizerOptions options;
  Result<OptimizeOutcome> outcome = OptimizeJoin(catalog, graph, options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(CheckPlanAgainstDpTable(Plan(), catalog, graph,
                                       CostModelKind::kNaive, outcome->table)
                   .ok);
  Result<Plan> corrupted = Plan::ExtractFromTable(outcome->table);
  ASSERT_TRUE(corrupted.ok());
  corrupted->mutable_root().set = RelSet::FirstN(3);
  const OracleVerdict verdict = CheckPlanAgainstDpTable(
      *corrupted, catalog, graph, CostModelKind::kNaive, outcome->table);
  EXPECT_FALSE(verdict.ok);
}

}  // namespace
}  // namespace blitz
