# Empty dependencies file for blitz_query.
# This may be replaced when dependencies are built.
