#ifndef BLITZ_QUERY_TOPOLOGY_H_
#define BLITZ_QUERY_TOPOLOGY_H_

#include <string_view>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace blitz {

/// Join-graph shapes. The paper's benchmark uses chain, cycle+3, star, and
/// clique (Section 6.1); cycle and grid are provided for additional studies.
enum class Topology {
  kChain,       ///< Appendix chain with the interleaved cardinality order.
  kCycle,       ///< Chain closed into a cycle.
  kCyclePlus3,  ///< Cycle augmented with three cross-edges ("cycle+3").
  kStar,        ///< Hub R_{n-1} connected to every other relation.
  kClique,      ///< Every pair connected.
  kGrid,        ///< Near-square grid lattice.
};

const char* TopologyToString(Topology t);
Result<Topology> ParseTopology(std::string_view s);

/// All four paper topologies, in the order of the Figure 4 columns.
inline constexpr Topology kPaperTopologies[] = {
    Topology::kChain, Topology::kCyclePlus3, Topology::kStar,
    Topology::kClique};

/// The Appendix's chain visiting order, which interleaves low- and
/// high-cardinality relations: for n = 15 it is
/// R0-R8-R1-R9-R2-R10-R3-R11-R4-R12-R5-R13-R6-R14-R7.
/// Generalized: alternate R_i and R_{h+i} with h = ceil(n/2).
std::vector<int> ChainOrder(int n);

/// Edge list (pairs with first < second) for the given topology over n
/// relations. Fails if n is too small for the shape (chain/star need n >= 2,
/// cycle n >= 3, cycle+3 n >= 9 so the cross-edges are distinct).
Result<std::vector<std::pair<int, int>>> MakeTopologyEdges(Topology t, int n);

/// A random connected graph: a random spanning tree plus each remaining pair
/// independently with probability `extra_edge_prob`. Deterministic in the
/// Rng state; used by property tests.
std::vector<std::pair<int, int>> MakeRandomConnectedEdges(
    int n, double extra_edge_prob, Rng* rng);

}  // namespace blitz

#endif  // BLITZ_QUERY_TOPOLOGY_H_
