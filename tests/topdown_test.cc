#include "baseline/topdown.h"

#include <cmath>

#include <gtest/gtest.h>

#include "baseline/bruteforce.h"
#include "baseline/dpsub.h"
#include "core/optimizer.h"
#include "plan/evaluate.h"
#include "test_util.h"

namespace blitz {
namespace {

using ::blitz::testing::MakeRandomInstance;

TEST(TopDownTest, MatchesBruteForceAcrossModelsAndSeeds) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto instance = MakeRandomInstance(8, seed);
    for (const CostModelKind kind :
         {CostModelKind::kNaive, CostModelKind::kSortMerge,
          CostModelKind::kDiskNestedLoops}) {
      Result<TopDownResult> topdown =
          OptimizeTopDown(instance.catalog, instance.graph, kind,
                          TopDownOptions{});
      Result<BruteForceResult> brute =
          OptimizeBruteForce(instance.catalog, instance.graph, kind);
      ASSERT_TRUE(topdown.ok());
      ASSERT_TRUE(brute.ok());
      EXPECT_NEAR(topdown->cost, brute->cost,
                  1e-9 * std::max(1.0, brute->cost))
          << "seed " << seed << " model " << CostModelKindToString(kind);
    }
  }
}

TEST(TopDownTest, ExtractedPlanCostsWhatItReports) {
  const auto instance = MakeRandomInstance(9, 4);
  Result<TopDownResult> result = OptimizeTopDown(
      instance.catalog, instance.graph, CostModelKind::kNaive,
      TopDownOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan.relations(), instance.catalog.AllRelations());
  const double evaluated = EvaluateCost(result->plan, instance.catalog,
                                        instance.graph,
                                        CostModelKind::kNaive);
  EXPECT_NEAR(evaluated, result->cost, 1e-9 * std::max(1.0, evaluated));
}

TEST(TopDownTest, BoundsOnAndOffAgreeOnTheOptimum) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto instance = MakeRandomInstance(8, seed + 30);
    TopDownOptions with_bounds;
    TopDownOptions without_bounds;
    without_bounds.use_cost_bounds = false;
    Result<TopDownResult> pruned = OptimizeTopDown(
        instance.catalog, instance.graph, CostModelKind::kNaive,
        with_bounds);
    Result<TopDownResult> plain = OptimizeTopDown(
        instance.catalog, instance.graph, CostModelKind::kNaive,
        without_bounds);
    ASSERT_TRUE(pruned.ok());
    ASSERT_TRUE(plain.ok());
    EXPECT_NEAR(pruned->cost, plain->cost, 1e-9 * plain->cost)
        << "seed " << seed;
    // Without bounds every group is explored exactly once and the split
    // count equals the bottom-up DP's aggregate loop count,
    // 3^n - 2^(n+1) + 1 (n = 8 here). With bounds, groups pruned under a
    // tight budget are *re-explored* when a later caller offers a larger
    // one, so the count can exceed it — a genuine cost of top-down
    // branch-and-bound that the benches surface.
    EXPECT_EQ(plain->splits_costed, 6561u - 512u + 1u);
    EXPECT_EQ(plain->groups_explored, 256u - 8u - 1u);
  }
}

TEST(TopDownTest, BoundsPruneWorkOnEasyQueries) {
  // Wide cost spread (large cardinalities) gives the bounds traction.
  Result<Catalog> catalog =
      Catalog::FromCardinalities({10, 100, 1000, 10000, 100000, 1000000});
  ASSERT_TRUE(catalog.ok());
  JoinGraph graph(6);
  for (int i = 0; i + 1 < 6; ++i) {
    ASSERT_TRUE(graph.AddPredicate(i, i + 1, 1e-3).ok());
  }
  TopDownOptions with_bounds;
  TopDownOptions without_bounds;
  without_bounds.use_cost_bounds = false;
  Result<TopDownResult> pruned =
      OptimizeTopDown(*catalog, graph, CostModelKind::kNaive, with_bounds);
  Result<TopDownResult> plain =
      OptimizeTopDown(*catalog, graph, CostModelKind::kNaive,
                      without_bounds);
  ASSERT_TRUE(pruned.ok());
  ASSERT_TRUE(plain.ok());
  EXPECT_GT(pruned->splits_pruned, 0u);
}

TEST(TopDownTest, NoProductsModeMatchesDpSub) {
  const auto instance = MakeRandomInstance(8, 44, /*extra_edge_prob=*/0.3);
  TopDownOptions options;
  options.allow_cartesian_products = false;
  Result<TopDownResult> topdown = OptimizeTopDown(
      instance.catalog, instance.graph, CostModelKind::kNaive, options);
  Result<DpSubResult> dpsub = OptimizeDpSubNoProducts(
      instance.catalog, instance.graph, CostModelKind::kNaive);
  ASSERT_TRUE(topdown.ok());
  ASSERT_TRUE(dpsub.ok());
  EXPECT_NEAR(topdown->cost, dpsub->cost, 1e-9 * dpsub->cost);
}

TEST(TopDownTest, NoProductsModeFailsOnDisconnectedGraph) {
  Result<Catalog> catalog = Catalog::FromCardinalities({10, 10});
  ASSERT_TRUE(catalog.ok());
  TopDownOptions options;
  options.allow_cartesian_products = false;
  Result<TopDownResult> result = OptimizeTopDown(
      *catalog, JoinGraph(2), CostModelKind::kNaive, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(TopDownTest, MatchesBlitzsplitOnPaperWorkload) {
  const auto instance = MakeRandomInstance(10, 77, 0.25);
  Result<TopDownResult> topdown = OptimizeTopDown(
      instance.catalog, instance.graph, CostModelKind::kDiskNestedLoops,
      TopDownOptions{});
  OptimizerOptions options;
  options.cost_model = CostModelKind::kDiskNestedLoops;
  Result<OptimizeOutcome> bottom_up =
      OptimizeJoin(instance.catalog, instance.graph, options);
  ASSERT_TRUE(topdown.ok());
  ASSERT_TRUE(bottom_up.ok());
  EXPECT_NEAR(topdown->cost, bottom_up->cost,
              1e-4 * std::max(1.0f, bottom_up->cost));
}

TEST(TopDownTest, CountersAreCoherent) {
  const auto instance = MakeRandomInstance(7, 2);
  Result<TopDownResult> result = OptimizeTopDown(
      instance.catalog, instance.graph, CostModelKind::kNaive,
      TopDownOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->groups_explored, 0u);
  EXPECT_GT(result->splits_costed, 0u);
  EXPECT_LE(result->splits_pruned, result->splits_costed);
}

}  // namespace
}  // namespace blitz
