#ifndef BLITZ_API_OPTIMIZE_QUERY_H_
#define BLITZ_API_OPTIMIZE_QUERY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "baseline/hybrid.h"
#include "catalog/catalog.h"
#include "common/status.h"
#include "core/optimizer.h"
#include "cost/cost_model.h"
#include "plan/plan.h"
#include "query/join_graph.h"

namespace blitz {

/// One-call configuration for the top-level entry point.
struct QueryOptimizerOptions {
  CostModelKind cost_model = CostModelKind::kNaive;

  /// Largest n optimized exhaustively (O(3^n) time, O(2^n) space); larger
  /// queries fall back to the hybrid randomized/DP optimizer.
  int exhaustive_limit = 16;

  /// If set, exhaustive optimization runs under the Section 6.4 threshold
  /// ladder starting at this value.
  std::optional<float> initial_cost_threshold;

  /// Configuration of the fallback for n > exhaustive_limit. (cost_model
  /// and seed fields here are overridden to match this struct's.)
  HybridOptions hybrid;

  /// Attach physical join algorithms to the plan (Section 6.5 post-pass).
  bool attach_algorithms = true;

  /// Fill OptimizedQuery::report with per-phase wall times and optimizer
  /// bookkeeping (small constant overhead per query).
  bool collect_report = false;

  /// Tally the Section 3.3 / 6.2 operation counters into the report
  /// (requires collect_report; adds the counting-policy overhead to the
  /// exhaustive path).
  bool count_operations = false;
};

/// Per-query observability report (attached when collect_report is set).
/// Wall times are phase-exclusive: total_seconds covers the whole call,
/// the phase fields its non-overlapping stages.
struct OptimizeReport {
  double total_seconds = 0;
  double optimize_seconds = 0;   ///< DP passes or hybrid search.
  double extract_seconds = 0;    ///< Plan extraction from the DP table.
  double evaluate_seconds = 0;   ///< Independent cost re-evaluation.
  double attach_seconds = 0;     ///< Algorithm attachment post-pass.

  /// One entry per threshold-ladder pass (empty when no ladder ran);
  /// +inf marks the last-resort unbounded pass.
  std::vector<float> thresholds_tried;

  /// Section 3.3 / 6.2 operation counters (all zero unless
  /// count_operations was set; exhaustive path only).
  CountingInstrumentation counters;

  /// Peak DP-table footprint (0 on the hybrid path, which sizes its
  /// tables per block inside OptimizeJoin).
  std::uint64_t peak_dp_table_bytes = 0;

  /// True when the hybrid fallback optimized this query.
  bool used_hybrid = false;

  std::string ToString() const;
};

/// The result of OptimizeQuery.
struct OptimizedQuery {
  Plan plan;

  /// Double-precision cost of `plan` under the chosen model (re-evaluated
  /// by the independent plan evaluator, so it is comparable across the
  /// exhaustive and hybrid paths).
  double cost = 0;

  /// True if the plan is a guaranteed optimum (exhaustive path).
  bool exact = false;

  /// Optimizer passes (> 1 only when a threshold ladder re-optimized).
  int passes = 1;

  /// Observability report; engaged iff options.collect_report was set.
  std::optional<OptimizeReport> report;
};

/// The library's front door: optimizes the join of all catalog relations
/// under `graph`, choosing exhaustive blitzsplit or the hybrid fallback by
/// problem size, applying the optional threshold ladder, and attaching
/// physical algorithms. This is the call a downstream system embeds.
Result<OptimizedQuery> OptimizeQuery(const Catalog& catalog,
                                     const JoinGraph& graph,
                                     const QueryOptimizerOptions& options);

}  // namespace blitz

#endif  // BLITZ_API_OPTIMIZE_QUERY_H_
