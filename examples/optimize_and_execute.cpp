// Full pipeline: optimize a join, attach physical join algorithms
// (Section 6.5), generate synthetic data matching the catalog statistics,
// execute the plan with the bundled in-memory engine, and compare the
// optimizer's cardinality estimates against the observed row counts at
// every join node.

#include <cstdio>

#include "catalog/catalog.h"
#include "core/optimizer.h"
#include "exec/datagen.h"
#include "exec/executor.h"
#include "plan/algorithm_choice.h"
#include "plan/plan.h"
#include "query/join_graph.h"

int main() {
  using namespace blitz;

  Result<Catalog> catalog = Catalog::Create({
      {"users", 500, 64},
      {"posts", 2000, 64},
      {"comments", 8000, 64},
      {"tags", 50, 64},
  });
  if (!catalog.ok()) return 1;

  JoinGraph graph(4);
  graph.AddPredicate(0, 1, 1.0 / 500);   // posts.user_id = users.id
  graph.AddPredicate(1, 2, 1.0 / 2000);  // comments.post_id = posts.id
  graph.AddPredicate(1, 3, 1.0 / 50);    // posts.tag_id = tags.id

  // Optimize under the multi-algorithm cost model min(sm, dnl).
  OptimizerOptions options;
  options.cost_model = CostModelKind::kMinSmDnl;
  Result<OptimizeOutcome> outcome = OptimizeJoin(*catalog, graph, options);
  if (!outcome.ok() || !outcome->found_plan()) return 1;
  Result<Plan> plan = Plan::ExtractFromTable(outcome->table);
  if (!plan.ok()) return 1;

  // One traversal attaches sort-merge or nested-loops per node.
  ChooseAlgorithms(&plan.value(), *catalog, graph, options.cost_model);
  std::printf("optimized plan with physical algorithms:\n%s\n",
              plan->ToTreeString(&catalog.value()).c_str());

  // Materialize data consistent with the statistics and run the plan.
  DataGenOptions datagen;
  datagen.seed = 7;
  Result<std::vector<ExecTable>> tables =
      GenerateTables(*catalog, graph, datagen);
  if (!tables.ok()) return 1;
  Result<ExecutionResult> result = ExecutePlan(*plan, *tables, graph);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("estimate vs observed, per join node:\n");
  for (const NodeStats& stats : result->node_stats) {
    std::printf("  %-22s estimated %10.1f   observed %8llu   (%s)\n",
                stats.set.ToString().c_str(),
                outcome->table.card(stats.set),
                static_cast<unsigned long long>(stats.output_rows),
                JoinAlgorithmToString(stats.algorithm));
  }
  std::printf("final result: %llu rows\n",
              static_cast<unsigned long long>(result->result.num_rows()));
  return 0;
}
