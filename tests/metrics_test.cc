#include "obs/metrics.h"

#include <algorithm>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace blitz {
namespace {

TEST(HistogramTest, BasicStats) {
  Histogram h({1.0, 10.0, 100.0});
  h.Record(0.5);
  h.Record(5.0);
  h.Record(50.0);
  h.Record(500.0);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 555.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 500.0);
  EXPECT_EQ(h.bucket_counts(), (std::vector<std::uint64_t>{1, 1, 1, 1}));
}

TEST(HistogramTest, PercentilesLandInTheRightBucket) {
  Histogram h({1.0, 2.0, 5.0, 10.0});
  // 90 samples in [1,2), 10 in [5,10): p50 must interpolate inside [1,2),
  // p95 and p99 inside [5,10).
  for (int i = 0; i < 90; ++i) h.Record(1.5);
  for (int i = 0; i < 10; ++i) h.Record(7.0);
  const double p50 = h.Percentile(50);
  EXPECT_GE(p50, 1.0);
  EXPECT_LT(p50, 2.0);
  const double p95 = h.Percentile(95);
  EXPECT_GE(p95, 5.0);
  EXPECT_LE(p95, 10.0);
  const double p99 = h.Percentile(99);
  EXPECT_GE(p99, p95);
  EXPECT_LE(p99, 10.0);
  // Percentiles are monotone in p.
  EXPECT_LE(h.Percentile(0), p50);
  EXPECT_LE(p50, p95);
}

TEST(HistogramTest, SingleSampleReportsItselfEverywhere) {
  Histogram h(Histogram::DefaultLatencyBounds());
  h.Record(0.0123);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 0.0123);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0123);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 0.0123);
}

TEST(HistogramTest, EmptyPercentileIsZero) {
  Histogram h({1.0});
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
}

TEST(HistogramTest, UniformSpreadApproximatesQuantiles) {
  std::vector<double> bounds;
  for (int i = 1; i <= 100; ++i) bounds.push_back(i);
  Histogram h(bounds);
  for (int i = 0; i < 1000; ++i) h.Record(i / 10.0);  // uniform on [0, 100)
  EXPECT_NEAR(h.Percentile(50), 50.0, 2.0);
  EXPECT_NEAR(h.Percentile(95), 95.0, 2.0);
  EXPECT_NEAR(h.Percentile(99), 99.0, 2.0);
}

TEST(HistogramTest, FoldOfEmptyIntoEmptyStaysEmpty) {
  Histogram a({1.0, 10.0});
  Histogram b({1.0, 10.0});
  a += b;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.Percentile(50), 0.0);
}

TEST(HistogramTest, FoldEmptyLeavesStatsUntouched) {
  Histogram a({1.0, 10.0});
  a.Record(5.0);
  Histogram b({1.0, 10.0});
  a += b;  // folding an empty histogram changes nothing
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.min(), 5.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);
  EXPECT_DOUBLE_EQ(a.Percentile(99), 5.0);
}

TEST(HistogramTest, FoldIntoEmptyAdoptsOtherStats) {
  Histogram a({1.0, 10.0});
  Histogram b({1.0, 10.0});
  b.Record(0.5);
  b.Record(50.0);
  a += b;
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.min(), 0.5);
  EXPECT_DOUBLE_EQ(a.max(), 50.0);
  EXPECT_DOUBLE_EQ(a.sum(), 50.5);
}

TEST(HistogramTest, FoldMatchesSingleHistogramRecording) {
  // Two workers' shards folded together must equal one histogram that saw
  // every sample — the exactness contract of the rank-barrier fold.
  Histogram merged({1.0, 2.0, 5.0, 10.0});
  Histogram worker1({1.0, 2.0, 5.0, 10.0});
  Histogram worker2({1.0, 2.0, 5.0, 10.0});
  Histogram reference({1.0, 2.0, 5.0, 10.0});
  for (int i = 0; i < 90; ++i) {
    worker1.Record(1.5);
    reference.Record(1.5);
  }
  for (int i = 0; i < 10; ++i) {
    worker2.Record(7.0);
    reference.Record(7.0);
  }
  merged += worker1;
  merged += worker2;
  EXPECT_EQ(merged.count(), reference.count());
  EXPECT_DOUBLE_EQ(merged.sum(), reference.sum());
  EXPECT_DOUBLE_EQ(merged.min(), reference.min());
  EXPECT_DOUBLE_EQ(merged.max(), reference.max());
  EXPECT_EQ(merged.bucket_counts(), reference.bucket_counts());
  EXPECT_DOUBLE_EQ(merged.Percentile(50), reference.Percentile(50));
  EXPECT_DOUBLE_EQ(merged.Percentile(95), reference.Percentile(95));
}

TEST(HistogramTest, ConcurrentWorkerFoldLosesNothing) {
  // The rank-parallel pattern: each worker records into a thread-local
  // histogram, then folds it into the shared one under a mutex at its
  // barrier. Run under TSan in CI (label "parallel").
  const std::vector<double> bounds = Histogram::DefaultLatencyBounds();
  Histogram shared(bounds);
  std::mutex fold_mu;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&shared, &fold_mu, &bounds, t] {
      Histogram local(bounds);
      for (int i = 0; i < kPerThread; ++i) {
        local.Record(1e-5 * (t + 1));
      }
      std::lock_guard<std::mutex> lock(fold_mu);
      shared += local;
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(shared.count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(shared.min(), 1e-5);
  EXPECT_DOUBLE_EQ(shared.max(), 4e-5);
}

TEST(MetricsRegistryTest, CountersAccumulate) {
  MetricsRegistry metrics;
  metrics.AddCounter("a");
  metrics.AddCounter("a", 2);
  metrics.AddCounter("b", 7);
  const MetricsSnapshot snapshot = metrics.TakeSnapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].first, "a");
  EXPECT_EQ(snapshot.counters[0].second, 3u);
  EXPECT_EQ(snapshot.counters[1].second, 7u);
}

TEST(MetricsRegistryTest, GaugesSetAndMax) {
  MetricsRegistry metrics;
  metrics.SetGauge("g", 5.0);
  metrics.SetGauge("g", 3.0);
  metrics.MaxGauge("peak", 10.0);
  metrics.MaxGauge("peak", 4.0);
  metrics.MaxGauge("peak", 12.0);
  const MetricsSnapshot snapshot = metrics.TakeSnapshot();
  ASSERT_EQ(snapshot.gauges.size(), 2u);
  EXPECT_DOUBLE_EQ(snapshot.gauges[0].second, 3.0);   // last write wins
  EXPECT_DOUBLE_EQ(snapshot.gauges[1].second, 12.0);           // peak
}

TEST(MetricsRegistryTest, DisabledRegistryAddsNoMetrics) {
  MetricsRegistry metrics(/*enabled=*/false);
  EXPECT_FALSE(metrics.enabled());
  metrics.AddCounter("a");
  metrics.SetGauge("g", 1.0);
  metrics.MaxGauge("m", 2.0);
  metrics.RecordLatency("l", 0.5);
  EXPECT_TRUE(metrics.TakeSnapshot().empty());
  metrics.SetLabel("l", "v");
  EXPECT_EQ(metrics.ToJson(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{},"
            "\"labels\":{}}");
}

TEST(MetricsRegistryTest, JsonDumpIsWellFormed) {
  MetricsRegistry metrics;
  metrics.AddCounter("optimizer.calls", 3);
  metrics.SetGauge("bytes", 16384);
  metrics.RecordLatency("seconds", 0.002);
  const std::string json = metrics.ToJson();
  EXPECT_NE(json.find("\"counters\":{\"optimizer.calls\":3}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"bytes\":16384"), std::string::npos) << json;
  EXPECT_NE(json.find("\"seconds\":{\"count\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\":"), std::string::npos) << json;
  // Balanced braces, no trailing comma before a closing brace.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(json.find(",}"), std::string::npos) << json;
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(MetricsRegistryTest, NonFiniteGaugeSerializesAsString) {
  MetricsRegistry metrics;
  metrics.SetGauge("inf", std::numeric_limits<double>::infinity());
  const std::string json = metrics.ToJson();
  EXPECT_NE(json.find("\"inf\":\"inf\""), std::string::npos) << json;
}

TEST(MetricsRegistryTest, ResetClears) {
  MetricsRegistry metrics;
  metrics.AddCounter("a");
  metrics.RecordLatency("l", 1.0);
  metrics.Reset();
  EXPECT_TRUE(metrics.TakeSnapshot().empty());
}

TEST(MetricsRegistryTest, ConcurrentWritersDoNotLoseCounts) {
  MetricsRegistry metrics;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&metrics] {
      for (int i = 0; i < kPerThread; ++i) {
        metrics.AddCounter("shared");
        metrics.RecordLatency("lat", 1e-4);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const MetricsSnapshot snapshot = metrics.TakeSnapshot();
  ASSERT_EQ(snapshot.counters.size(), 1u);
  EXPECT_EQ(snapshot.counters[0].second,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].second.count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistryTest, LabelsLastWriteWinsAndExport) {
  MetricsRegistry metrics;
  metrics.SetLabel("api.simd_resolved", "avx2");
  metrics.SetLabel("api.simd_resolved", "avx512");
  metrics.SetLabel("api.tier", "exhaustive");
  const MetricsSnapshot snapshot = metrics.TakeSnapshot();
  ASSERT_EQ(snapshot.labels.size(), 2u);
  EXPECT_EQ(snapshot.labels[0].first, "api.simd_resolved");
  EXPECT_EQ(snapshot.labels[0].second, "avx512");
  const std::string json = metrics.ToJson();
  EXPECT_NE(json.find("\"labels\":{\"api.simd_resolved\":\"avx512\","
                      "\"api.tier\":\"exhaustive\"}"),
            std::string::npos)
      << json;
  metrics.Reset();
  EXPECT_TRUE(metrics.TakeSnapshot().empty());
}

TEST(GlobalMetricsTest, InstallAndDump) {
  EXPECT_EQ(GlobalMetrics(), nullptr);
  EXPECT_EQ(DumpMetricsJson(), "{}");
  MetricsRegistry metrics;
  SetGlobalMetrics(&metrics);
  EXPECT_EQ(GlobalMetrics(), &metrics);
  metrics.AddCounter("x");
  EXPECT_NE(DumpMetricsJson().find("\"x\":1"), std::string::npos);
  SetGlobalMetrics(nullptr);
  EXPECT_EQ(GlobalMetrics(), nullptr);
}

}  // namespace
}  // namespace blitz
