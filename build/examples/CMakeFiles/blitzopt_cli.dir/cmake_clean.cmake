file(REMOVE_RECURSE
  "CMakeFiles/blitzopt_cli.dir/blitzopt_cli.cpp.o"
  "CMakeFiles/blitzopt_cli.dir/blitzopt_cli.cpp.o.d"
  "blitzopt"
  "blitzopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blitzopt_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
