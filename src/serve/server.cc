#include "serve/server.h"

#include <chrono>
#include <utility>

#include "card/no_estimate.h"
#include "common/strings.h"
#include "governor/faultpoints.h"
#include "obs/metrics.h"

namespace blitz {

namespace {

void Count(std::string_view name) {
  if (MetricsRegistry* metrics = GlobalMetrics()) metrics->AddCounter(name);
}

/// The retry hint stamped on queue-full and draining sheds: long enough to
/// let a queue of optimizations drain a bit, short enough that a retrying
/// client rides out a transient spike instead of giving up.
constexpr double kShedRetryAfterMs = 50;

/// Serving-grade fingerprint budget. The library default (512 IR nodes) is
/// tuned for offline exactness; on the serving hot path a budget-exhausting
/// symmetric query would cost milliseconds *per request* on the submitting
/// thread, so the server caps the search low. Exhaustion is safe — the
/// fallback fingerprint still hits for byte-identical repeats — and the
/// probe and insert paths share this constant, so their keys always agree.
constexpr int kServingFingerprintBudget = 16;

}  // namespace

Status ServerOptions::Validate() const {
  if (num_workers < 1) {
    return Status::InvalidArgument("num_workers must be >= 1");
  }
  if (max_queue < 1) {
    return Status::InvalidArgument("max_queue must be >= 1");
  }
  if (default_deadline_ms < 0) {
    return Status::InvalidArgument("default_deadline_ms must be >= 0");
  }
  if (drain_grace_ms < 0) {
    return Status::InvalidArgument("drain_grace_ms must be >= 0");
  }
  if (default_estimator == EstimatorKind::kSampleHistogram) {
    return Status::InvalidArgument(
        "estimator hist needs local base tables; the serving tier supports "
        "paper and noest");
  }
  if (cache.shards < 1) {
    return Status::InvalidArgument("cache.shards must be >= 1");
  }
  BLITZ_RETURN_IF_ERROR(admission.Validate());
  return optimizer.Validate();
}

Result<std::unique_ptr<BlitzServer>> BlitzServer::Create(
    ServerOptions options) {
  BLITZ_RETURN_IF_ERROR(options.Validate());
  return std::unique_ptr<BlitzServer>(new BlitzServer(std::move(options)));
}

BlitzServer::BlitzServer(ServerOptions options)
    : options_(std::move(options)),
      arena_(options_.arena),
      admission_(options_.admission),
      cache_(options_.cache),
      latency_(Histogram::DefaultLatencyBounds()) {
  workers_.reserve(static_cast<std::size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

BlitzServer::~BlitzServer() { Shutdown(); }

Status BlitzServer::Serve(ByteStream* stream) {
  if (std::optional<FaultSpec> fault = FaultHit(kFaultServeAccept)) {
    // Connection-level failure: answer once (id 0 — no frame was read) so
    // the client sees a status instead of a silent close, then refuse.
    const Status error = fault->kind == FaultKind::kFailStatus
                             ? fault->status
                             : Status::Unavailable("injected accept failure");
    ServeConnection conn;
    conn.stream = stream;
    Respond(&conn, ResponseFrame{0, error.code(), kShedRetryAfterMs,
                                 error.message()});
    Count("serve.accept_rejects");
    return error;
  }

  ServeConnection conn;
  conn.stream = stream;
  FrameReader reader(stream, options_.wire);
  Status result = Status::OK();
  for (;;) {
    Result<std::optional<RequestFrame>> frame = reader.ReadRequest();
    if (!frame.ok()) {
      // The stream is no longer frame-aligned; nothing after this point
      // can be parsed, so answer with id 0 and end the connection. The
      // process — and every other connection — is unaffected.
      result = frame.status();
      Respond(&conn,
              ResponseFrame{0, result.code(), 0, result.message()});
      Count("serve.protocol_errors");
      break;
    }
    if (!frame->has_value()) break;  // Clean EOF at a frame boundary.
    HandleRequest(&conn, nullptr, std::move(**frame));
  }

  // Responses for admitted requests are written by workers; hold the
  // connection open until the last one lands.
  {
    std::unique_lock<std::mutex> lock(conn.mu);
    conn.idle_cv.wait(lock, [&conn] { return conn.outstanding == 0; });
  }
  return result;
}

std::shared_ptr<ServeConnection> BlitzServer::OpenConnection(
    std::shared_ptr<ResponseSink> sink) {
  auto conn = std::make_shared<ServeConnection>();
  conn->sink = std::move(sink);
  return conn;
}

void BlitzServer::SubmitRequest(const std::shared_ptr<ServeConnection>& conn,
                                RequestFrame frame) {
  HandleRequest(conn.get(), conn, std::move(frame));
}

void BlitzServer::SubmitProtocolError(
    const std::shared_ptr<ServeConnection>& conn, const Status& error) {
  Respond(conn.get(), ResponseFrame{0, error.code(), 0, error.message()});
  Count("serve.protocol_errors");
}

std::string BlitzServer::BuildReplyBody(
    const OptimizedQuery& result, const Catalog& catalog,
    EstimatorKind requested_estimator) const {
  ServeReply reply;
  reply.plan = result.plan.ToString(&catalog);
  reply.cost = result.cost;
  reply.tier = OptimizerTierName(result.tier);
  reply.passes = result.passes;
  reply.degradations =
      result.report.has_value()
          ? static_cast<int>(result.report->degradations.size())
          : 0;
  reply.estimator = result.report.has_value()
                        ? EstimatorKindName(result.report->estimator)
                        : EstimatorKindName(requested_estimator);
  reply.cached = result.from_cache;
  return EncodeReplyBody(reply);
}

void BlitzServer::HandleRequest(
    ServeConnection* conn, const std::shared_ptr<ServeConnection>& conn_ref,
    RequestFrame frame) {
  // Introspection is answered before admission and before the draining
  // check — /statz must work while the server sheds everything else.
  if (frame.body == kStatzBody) {
    Respond(conn,
            ResponseFrame{frame.id, StatusCode::kOk, 0, StatzBody()});
    Count("serve.statz");
    return;
  }

  Count("serve.requests");
  const auto shed = [&](const Status& status, double retry_after_ms,
                        std::string_view counter) {
    Respond(conn, ResponseFrame{frame.id, status.code(), retry_after_ms,
                                status.message()});
    Count(counter);
  };

  bool draining;
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining = draining_ || stopping_;
  }
  // Shed outside mu_: Respond re-enters it for the answered counter.
  if (draining) {
    shed(Status::Unavailable("server is draining"), kShedRetryAfterMs,
         "serve.shed.draining");
    return;
  }

  const auto start_time = std::chrono::steady_clock::now();
  AdmissionController::Decision decision =
      admission_.Admit(frame.tenant, frame.body.size());
  if (!decision.status.ok()) {
    shed(decision.status, decision.retry_after_ms, "serve.shed.admission");
    return;
  }
  // Admitted: from here every early exit must Release the tenant slot.

  Job job;
  job.conn = conn;
  job.conn_ref = conn_ref;
  job.id = frame.id;
  job.tenant = frame.tenant;
  job.body = std::move(frame.body);

  // Plan-cache probe, on the submitting thread: parse and canonicalize
  // here so a hit skips the queue and the workers entirely — the warm-path
  // latency is a parse + a fingerprint + one shard lookup. A miss hands
  // the parsed spec and fingerprint to the worker (no duplicate work);
  // anything unusual (parse error, unservable estimator) is deliberately
  // left for ProcessJob so error ordering matches the uncached server.
  if (!cache_.disabled()) {
    Result<QuerySpec> parsed = ParseBjq(job.body, options_.parse);
    if (parsed.ok()) {
      const EstimatorKind estimator_kind =
          parsed->estimator.value_or(options_.default_estimator);
      if (estimator_kind != EstimatorKind::kSampleHistogram) {
        std::optional<NoEstimateEstimator> no_estimate;
        if (estimator_kind == EstimatorKind::kNoEstimate) {
          no_estimate.emplace(parsed->graph);
        }
        QueryOptimizerOptions opts = options_.optimizer;
        opts.cost_model = parsed->cost_model;
        opts.initial_cost_threshold = parsed->threshold;
        opts.estimator = no_estimate.has_value() ? &*no_estimate : nullptr;
        PlanFingerprint fp =
            ComputePlanFingerprint(parsed->catalog, parsed->graph, opts,
                                   kServingFingerprintBudget);
        if (std::optional<OptimizedQuery> hit = cache_.Lookup(fp);
            hit.has_value()) {
          const std::string body =
              BuildReplyBody(*hit, parsed->catalog, estimator_kind);
          admission_.Release(job.tenant);
          Respond(conn, ResponseFrame{job.id, StatusCode::kOk, 0, body});
          Count("serve.cache.hit");
          RecordLatencySample(start_time);
          return;
        }
        Count("serve.cache.miss");
        job.fingerprint = std::move(fp);
      }
      job.spec = std::move(*parsed);
    }
  }

  const TenantQuota& quota = admission_.quota_for(job.tenant);
  double deadline_ms =
      frame.deadline_ms > 0 ? frame.deadline_ms : options_.default_deadline_ms;
  if (quota.max_deadline_ms > 0 &&
      (deadline_ms == 0 || deadline_ms > quota.max_deadline_ms)) {
    deadline_ms = quota.max_deadline_ms;
  }

  job.token = std::make_shared<CancellationToken>();
  job.enqueue_time = start_time;
  job.budget = options_.optimizer.budget;
  if (deadline_ms > 0) job.budget.deadline_seconds = deadline_ms / 1000.0;
  if (quota.max_dp_table_bytes > 0) {
    job.budget.max_dp_table_bytes = quota.max_dp_table_bytes;
  }
  job.budget.cancellation = job.token.get();
  // Resolve the deadline at enqueue so time spent waiting in the queue
  // counts against the request's allowance, not just optimize time.
  job.budget = job.budget.Resolved();

  if (std::optional<FaultSpec> fault = FaultHit(kFaultServeEnqueue)) {
    admission_.Release(job.tenant);
    const Status error =
        fault->kind == FaultKind::kFailStatus
            ? fault->status
            : Status::ResourceExhausted("injected enqueue failure");
    shed(error, kShedRetryAfterMs, "serve.shed.enqueue_fault");
    return;
  }

  {
    std::lock_guard<std::mutex> conn_lock(conn->mu);
    ++conn->outstanding;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (draining_ || stopping_ ||
        queue_.size() >= static_cast<std::size_t>(options_.max_queue)) {
      const bool full = !draining_ && !stopping_;
      lock.unlock();
      admission_.Release(job.tenant);
      {
        std::lock_guard<std::mutex> conn_lock(conn->mu);
        --conn->outstanding;
      }
      shed(Status::Unavailable(full ? "request queue is full"
                                    : "server is draining"),
           kShedRetryAfterMs,
           full ? "serve.shed.queue" : "serve.shed.draining");
      return;
    }
    job.token_key = next_token_key_++;
    in_flight_[job.token_key] = job.token;
    ++in_flight_count_;
    queue_.push_back(std::move(job));
    if (MetricsRegistry* metrics = GlobalMetrics()) {
      metrics->MaxGauge("serve.queue_depth_peak",
                        static_cast<double>(queue_.size()));
    }
  }
  queue_cv_.notify_one();
}

void BlitzServer::WorkerLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained.
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    ProcessJob(std::move(job));
  }
}

void BlitzServer::ProcessJob(Job job) {
  // Cancelled while queued (a drain past its grace period): answer without
  // doing any work. Cancellation never degrades.
  if (job.token->cancelled()) {
    FinishJob(job, ResponseFrame{job.id, StatusCode::kCancelled, 0,
                                 "cancelled during server drain"});
    return;
  }

  if (std::optional<FaultSpec> fault = FaultHit(kFaultServeParse)) {
    const Status error =
        fault->kind == FaultKind::kFailStatus
            ? fault->status
            : Status::ResourceExhausted("injected parse allocation failure");
    FinishJob(job, ResponseFrame{job.id, error.code(), 0, error.message()});
    return;
  }

  QuerySpec spec;
  if (job.spec.has_value()) {
    spec = std::move(*job.spec);  // The cache probe already parsed it.
  } else {
    Result<QuerySpec> parsed = ParseBjq(job.body, options_.parse);
    if (!parsed.ok()) {
      const Status error = parsed.status();
      FinishJob(job,
                ResponseFrame{job.id, error.code(), 0, error.message()});
      return;
    }
    spec = std::move(*parsed);
  }

  // Resolve the cardinality estimator: the request's directive wins over
  // the server default. Histograms need base tables the serving tier does
  // not have, so a hist request is a request-level error, not a crash.
  const EstimatorKind estimator_kind =
      spec.estimator.value_or(options_.default_estimator);
  if (estimator_kind == EstimatorKind::kSampleHistogram) {
    FinishJob(job,
              ResponseFrame{job.id, StatusCode::kInvalidArgument, 0,
                            "estimator hist needs local base tables; the "
                            "serving tier supports paper and noest"});
    return;
  }
  std::optional<NoEstimateEstimator> no_estimate;
  if (estimator_kind == EstimatorKind::kNoEstimate) {
    no_estimate.emplace(spec.graph);
  }

  QueryOptimizerOptions opts = options_.optimizer;
  opts.cost_model = spec.cost_model;
  opts.initial_cost_threshold = spec.threshold;
  opts.budget = job.budget;
  opts.table_arena = &arena_;
  opts.collect_report = true;  // Degradation history feeds the reply body.
  opts.estimator = no_estimate.has_value() ? &*no_estimate : nullptr;

  Result<OptimizedQuery> optimized = Status::Internal("unreachable");
  if (cache_.disabled()) {
    optimized = OptimizeQuery(spec.catalog, spec.graph, opts);
  } else {
    // Single-flight through the cache: concurrent identical requests
    // coalesce onto one DP run; a completed, degradation-free result is
    // inserted for the next reader-thread probe to hit.
    PlanFingerprint fp =
        job.fingerprint.has_value()
            ? std::move(*job.fingerprint)
            : ComputePlanFingerprint(spec.catalog, spec.graph, opts,
                                     kServingFingerprintBudget);
    optimized = cache_.GetOrCompute(
        fp, [&] { return OptimizeQuery(spec.catalog, spec.graph, opts); },
        [&] { return job.token->cancelled(); });
    if (optimized.ok() && optimized->from_cache) Count("serve.cache.hit");
  }
  if (!optimized.ok()) {
    const Status error = optimized.status();
    FinishJob(job, ResponseFrame{job.id, error.code(), 0, error.message()});
    return;
  }

  const int degradations =
      optimized->report.has_value()
          ? static_cast<int>(optimized->report->degradations.size())
          : 0;
  if (degradations > 0) Count("serve.degradations");
  FinishJob(job,
            ResponseFrame{job.id, StatusCode::kOk, 0,
                          BuildReplyBody(*optimized, spec.catalog,
                                         estimator_kind)});
}

void BlitzServer::FinishJob(const Job& job, ResponseFrame response) {
  Respond(job.conn, response);
  admission_.Release(job.tenant);
  {
    std::lock_guard<std::mutex> lock(mu_);
    in_flight_.erase(job.token_key);
    if (--in_flight_count_ == 0) idle_cv_.notify_all();
  }
  if (MetricsRegistry* metrics = GlobalMetrics()) {
    metrics->AddCounter(response.code == StatusCode::kOk
                            ? "serve.responses.ok"
                            : "serve.responses.error");
  }
  RecordLatencySample(job.enqueue_time);
  // Last touch of the connection: once Serve's wait observes the decrement
  // it may return and destroy the ServeConnection, so the notify must
  // happen under conn->mu — notifying after unlock races a spurious wakeup
  // in Serve and touches a dead condition_variable.
  {
    std::lock_guard<std::mutex> conn_lock(job.conn->mu);
    --job.conn->outstanding;
    job.conn->idle_cv.notify_all();
  }
}

void BlitzServer::RecordLatencySample(
    std::chrono::steady_clock::time_point start) {
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  {
    std::lock_guard<std::mutex> lock(mu_);
    latency_.Record(seconds);
  }
  if (MetricsRegistry* metrics = GlobalMetrics()) {
    metrics->RecordLatency("serve.latency", seconds);
  }
}

void BlitzServer::Respond(ServeConnection* conn,
                          const ResponseFrame& response) {
  if (conn->sink != nullptr) {
    conn->sink->SendResponse(response);
  } else {
    std::lock_guard<std::mutex> lock(conn->write_mu);
    Status written = conn->stream->Write(EncodeResponseFrame(response));
    if (!written.ok()) Count("serve.write_errors");
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++requests_answered_;
}

std::string BlitzServer::StatzBody() const {
  const PlanCache::Stats cache = cache_.GetStats();
  const DpTableArena::Stats arena = arena_.stats();
  std::string out(kStatzMagic);
  out += '\n';
  {
    std::lock_guard<std::mutex> lock(mu_);
    out += StrFormat("requests_answered %llu\n",
                     static_cast<unsigned long long>(requests_answered_));
    out += StrFormat("in_flight %d\n", in_flight_count_);
    out += StrFormat("queue_depth %zu\n", queue_.size());
    out += StrFormat("draining %d\n", draining_ || stopping_ ? 1 : 0);
    out += StrFormat("latency_count %llu\n",
                     static_cast<unsigned long long>(latency_.count()));
    out += StrFormat("latency_p50_ms %.3f\n",
                     latency_.Percentile(50) * 1e3);
    out += StrFormat("latency_p95_ms %.3f\n",
                     latency_.Percentile(95) * 1e3);
    out += StrFormat("latency_p99_ms %.3f\n",
                     latency_.Percentile(99) * 1e3);
  }
  out += StrFormat("workers %d\n", options_.num_workers);
  out += StrFormat("max_queue %d\n", options_.max_queue);
  out += StrFormat("cache_enabled %d\n", cache_.disabled() ? 0 : 1);
  out += StrFormat("cache_hits %llu\n",
                   static_cast<unsigned long long>(cache.hits));
  out += StrFormat("cache_misses %llu\n",
                   static_cast<unsigned long long>(cache.misses));
  out += StrFormat("cache_inserts %llu\n",
                   static_cast<unsigned long long>(cache.inserts));
  out += StrFormat("cache_evictions %llu\n",
                   static_cast<unsigned long long>(cache.evictions));
  out += StrFormat("cache_bypasses %llu\n",
                   static_cast<unsigned long long>(cache.bypasses));
  out += StrFormat("cache_coalesced %llu\n",
                   static_cast<unsigned long long>(cache.coalesced));
  out += StrFormat("cache_entries %zu\n", cache.entries);
  out += StrFormat("cache_bytes %zu\n", cache.bytes);
  out += StrFormat("arena_hits %llu\n",
                   static_cast<unsigned long long>(arena.hits));
  out += StrFormat("arena_retained_tables %llu\n",
                   static_cast<unsigned long long>(arena.retained_tables));
  out += StrFormat("tenants_tracked %zu\n", admission_.tracked_tenants());
  for (const auto& [tenant, in_flight] : admission_.Snapshot()) {
    out += StrFormat("tenant_in_flight.%s %d\n", tenant.c_str(), in_flight);
  }
  return out;
}

void BlitzServer::BeginDrain() {
  bool skip_grace = false;
  if (std::optional<FaultSpec> fault = FaultHit(kFaultServeDrain)) {
    (void)fault;  // Any armed kind forces the no-grace drain path.
    skip_grace = true;
  }
  std::lock_guard<std::mutex> lock(mu_);
  draining_ = true;
  if (skip_grace) drain_skip_grace_ = true;
}

void BlitzServer::CancelInFlight() {
  for (auto& [key, token] : in_flight_) {
    (void)key;
    token->Cancel();
  }
}

void BlitzServer::Shutdown() {
  BeginDrain();
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (shut_down_) return;
    shut_down_ = true;
    const double grace_ms = drain_skip_grace_ ? 0 : options_.drain_grace_ms;
    idle_cv_.wait_for(
        lock,
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(grace_ms)),
        [this] { return in_flight_count_ == 0; });
    if (in_flight_count_ > 0) {
      // Grace expired: cancel the stragglers. Workers observe the tokens at
      // their next amortized governor check and answer kCancelled, so every
      // admitted request still gets a response.
      if (MetricsRegistry* metrics = GlobalMetrics()) {
        metrics->AddCounter("serve.drain.cancelled",
                            static_cast<std::uint64_t>(in_flight_count_));
      }
      CancelInFlight();
      idle_cv_.wait(lock, [this] { return in_flight_count_ == 0; });
    }
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

bool BlitzServer::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

DpTableArena::Stats BlitzServer::arena_stats() const {
  return arena_.stats();
}

std::uint64_t BlitzServer::requests_answered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return requests_answered_;
}

int BlitzServer::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_count_;
}

}  // namespace blitz
