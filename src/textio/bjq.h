#ifndef BLITZ_TEXTIO_BJQ_H_
#define BLITZ_TEXTIO_BJQ_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "card/estimator.h"
#include "catalog/catalog.h"
#include "cost/cost_model.h"
#include "query/join_graph.h"

namespace blitz {

/// A parsed ".bjq" (blitz join query) specification: the textual interface
/// used by the CLI example and for serializing workloads.
///
/// Format (one directive per line; '#' starts a comment):
///
///     relation <name> <cardinality> [<tuple_bytes>]
///     table <name> <rows> [<tuple_bytes>]
///     filter <name> <selectivity>
///     predicate <name_a> <name_b> <selectivity>
///     join <name_a>.<col_a> = <name_b>.<col_b> [<distinct_a> <distinct_b>]
///     equivalence <name_1> ... <name_k> : <distinct_1> ... <distinct_k>
///     policy <pairwise|calibrated>
///     costmodel <naive|sm|dnl|min|hash|minall>
///     threshold <initial_plan_cost_threshold>
///     estimator <paper|hist|noest>
///
/// A filter directive scales the named relation's cardinality by a local
/// selection selectivity before optimization (several filters multiply).
///
/// `table` is a synonym of `relation` for JOB-style workloads written
/// against named base tables. `join` is the JOB-style form of `predicate`:
/// an equi-join between named columns, whose selectivity is derived from
/// raw base-table statistics by the System-R rule 1/max(distinct_a,
/// distinct_b) instead of being stated explicitly. The distinct counts are
/// optional; each defaults to the named relation's declared row count (a
/// key-like column). Column names are carried for readability only — the
/// optimizer identifies predicates by the relation pair.
///
/// Relations must be declared before predicates or equivalence classes
/// referencing them. An equivalence directive declares k columns equal (one
/// per listed relation, with its distinct-value count) and is closed into
/// implied predicates per the policy (see query/equivalence.h; default
/// calibrated). Parallel predicates between a pair are merged by
/// multiplying selectivities. The costmodel, policy, threshold, and
/// estimator directives are optional (defaults: naive, calibrated, none,
/// none). The estimator directive requests a cardinality estimator by its
/// stable name (card/estimator.h); consumers map it to a concrete
/// CardinalityEstimator (or reject kinds they cannot build — blitzd has no
/// base tables to histogram, so it accepts paper and noest only).
struct QuerySpec {
  Catalog catalog;
  JoinGraph graph;
  CostModelKind cost_model = CostModelKind::kNaive;
  std::optional<float> threshold;
  std::optional<EstimatorKind> estimator;
};

/// Input-size caps for ParseBjq. A .bjq document is bounded by its relation
/// cap anyway (kMaxRelations), so legitimate queries are tiny; these limits
/// exist for servers parsing untrusted bytes — a hostile client must not be
/// able to balloon the parse buffer or spin the line loop. Both caps are
/// enforced incrementally with a line-numbered kResourceExhausted, and 0
/// disables a cap (trusted local files).
struct BjqLimits {
  std::uint64_t max_bytes = 1ull << 20;  ///< 1 MiB of input text.
  int max_lines = 100000;
};

/// Parses a .bjq document. Errors carry 1-based line numbers.
Result<QuerySpec> ParseBjq(std::string_view text);

/// ParseBjq under explicit input-size caps (servers; see BjqLimits).
Result<QuerySpec> ParseBjq(std::string_view text, const BjqLimits& limits);

/// Reads and parses a .bjq file from disk.
Result<QuerySpec> LoadBjqFile(const std::string& path);

/// Serializes a spec back to .bjq text (round-trips through ParseBjq).
std::string WriteBjq(const QuerySpec& spec);

}  // namespace blitz

#endif  // BLITZ_TEXTIO_BJQ_H_
