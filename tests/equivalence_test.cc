#include "query/equivalence.h"

#include <cmath>

#include <gtest/gtest.h>

#include "baseline/dpsub.h"
#include "core/optimizer.h"
#include "plan/plan.h"

namespace blitz {
namespace {

TEST(EquivalenceFactorTest, TwoWayIsOneOverMax) {
  EXPECT_DOUBLE_EQ(EquivalenceClassJoinFactor({10, 100}), 1.0 / 100);
  EXPECT_DOUBLE_EQ(EquivalenceClassJoinFactor({100, 10}), 1.0 / 100);
  EXPECT_DOUBLE_EQ(EquivalenceClassJoinFactor({7, 7}), 1.0 / 7);
}

TEST(EquivalenceFactorTest, KWayMatchesContainmentFormula) {
  // d_min / prod(d).
  EXPECT_DOUBLE_EQ(EquivalenceClassJoinFactor({10, 100, 1000}),
                   10.0 / (10.0 * 100 * 1000));
  EXPECT_DOUBLE_EQ(EquivalenceClassJoinFactor({5, 5, 5, 5}),
                   5.0 / 625.0);
}

TEST(JoinSpecBuilderTest, PlainPredicatesPassThrough) {
  JoinSpecBuilder builder(3);
  ASSERT_TRUE(builder.AddPredicate(0, 1, 0.25).ok());
  Result<JoinGraph> graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_predicates(), 1);
  EXPECT_DOUBLE_EQ(graph->Selectivity(0, 1), 0.25);
}

TEST(JoinSpecBuilderTest, ParallelPredicatesMergeByMultiplication) {
  JoinSpecBuilder builder(2);
  ASSERT_TRUE(builder.AddPredicate(0, 1, 0.5).ok());
  ASSERT_TRUE(builder.AddPredicate(1, 0, 0.1).ok());
  Result<JoinGraph> graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_predicates(), 1);
  EXPECT_DOUBLE_EQ(graph->Selectivity(0, 1), 0.05);
}

TEST(JoinSpecBuilderTest, EquivalenceClassClosesTransitively) {
  // Class {R0, R1, R2}: all three pairwise edges appear, including the
  // implied R0-R2 edge.
  JoinSpecBuilder builder(4);
  ASSERT_TRUE(builder.AddEquivalenceClass({0, 1, 2}, {10, 20, 40}).ok());
  Result<JoinGraph> graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_predicates(), 3);
  EXPECT_TRUE(graph->HasEdge(0, 2));
  EXPECT_FALSE(graph->HasEdge(0, 3));
}

TEST(JoinSpecBuilderTest, CalibratedClassProductEqualsJoinFactor) {
  const std::vector<double> distinct = {30, 10, 500};
  JoinSpecBuilder builder(3, EquivalencePolicy::kCalibrated);
  ASSERT_TRUE(builder.AddEquivalenceClass({0, 1, 2}, distinct).ok());
  Result<JoinGraph> graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  const double product = graph->PiInduced(RelSet::FirstN(3));
  EXPECT_NEAR(product, EquivalenceClassJoinFactor(distinct),
              1e-15 * EquivalenceClassJoinFactor(distinct));
}

TEST(JoinSpecBuilderTest, PairwisePolicyGivesTextbookPairSelectivities) {
  JoinSpecBuilder builder(3, EquivalencePolicy::kPairwise);
  ASSERT_TRUE(builder.AddEquivalenceClass({0, 1, 2}, {10, 20, 40}).ok());
  Result<JoinGraph> graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  EXPECT_DOUBLE_EQ(graph->Selectivity(0, 1), 1.0 / 20);
  EXPECT_DOUBLE_EQ(graph->Selectivity(1, 2), 1.0 / 40);
  EXPECT_DOUBLE_EQ(graph->Selectivity(0, 2), 1.0 / 40);
  // And the known bias: the induced 3-way product underestimates the true
  // factor.
  EXPECT_LT(graph->PiInduced(RelSet::FirstN(3)),
            EquivalenceClassJoinFactor({10, 20, 40}));
}

TEST(JoinSpecBuilderTest, CalibratedChainEdgesAreExactPairwise) {
  // Sorted by distinct count, consecutive members carry 1/(larger d).
  JoinSpecBuilder builder(3, EquivalencePolicy::kCalibrated);
  ASSERT_TRUE(builder.AddEquivalenceClass({2, 0, 1}, {40, 10, 20}).ok());
  Result<JoinGraph> graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  // Sorted order by d: R0 (10), R1 (20), R2 (40).
  EXPECT_DOUBLE_EQ(graph->Selectivity(0, 1), 1.0 / 20);
  EXPECT_DOUBLE_EQ(graph->Selectivity(1, 2), 1.0 / 40);
  EXPECT_DOUBLE_EQ(graph->Selectivity(0, 2), 1.0);  // implied, connectivity
}

TEST(JoinSpecBuilderTest, ImpliedEdgeUnlocksProductFreePlan) {
  // Without closure, R0-R2 has no edge and the no-products optimizer
  // cannot join them directly; with the implied edge it can.
  Result<Catalog> catalog = Catalog::FromCardinalities({100, 10000, 100});
  ASSERT_TRUE(catalog.ok());

  JoinGraph literal(3);
  ASSERT_TRUE(literal.AddPredicate(0, 1, 1e-4).ok());
  ASSERT_TRUE(literal.AddPredicate(1, 2, 1e-4).ok());

  JoinSpecBuilder builder(3);
  ASSERT_TRUE(
      builder.AddEquivalenceClass({0, 1, 2}, {100, 10000, 100}).ok());
  Result<JoinGraph> closed = builder.Build();
  ASSERT_TRUE(closed.ok());
  EXPECT_TRUE(closed->HasEdge(0, 2));

  // The closed graph admits the (R0 x R2) shape as a predicate join.
  Result<DpSubResult> closed_plan =
      OptimizeDpSubNoProducts(*catalog, *closed, CostModelKind::kNaive);
  ASSERT_TRUE(closed_plan.ok());

  // Both graphs still optimize fine under blitzsplit (which never needed
  // the edge for connectivity).
  Result<OptimizeOutcome> literal_outcome =
      OptimizeJoin(*catalog, literal, OptimizerOptions{});
  ASSERT_TRUE(literal_outcome.ok());
  EXPECT_TRUE(literal_outcome->found_plan());
}

TEST(JoinSpecBuilderTest, OverlappingClassesMergeEdges) {
  // Two classes sharing the pair (0,1): their selectivities multiply.
  JoinSpecBuilder builder(2);
  ASSERT_TRUE(builder.AddEquivalenceClass({0, 1}, {10, 10}).ok());
  ASSERT_TRUE(builder.AddEquivalenceClass({0, 1}, {5, 20}).ok());
  Result<JoinGraph> graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_predicates(), 1);
  EXPECT_DOUBLE_EQ(graph->Selectivity(0, 1), (1.0 / 10) * (1.0 / 20));
}

TEST(JoinSpecBuilderTest, RejectsBadInput) {
  JoinSpecBuilder builder(3);
  EXPECT_FALSE(builder.AddPredicate(0, 0, 0.5).ok());
  EXPECT_FALSE(builder.AddPredicate(0, 5, 0.5).ok());
  EXPECT_FALSE(builder.AddPredicate(0, 1, 0.0).ok());
  EXPECT_FALSE(builder.AddEquivalenceClass({0}, {10}).ok());
  EXPECT_FALSE(builder.AddEquivalenceClass({0, 1}, {10}).ok());
  EXPECT_FALSE(builder.AddEquivalenceClass({0, 0}, {10, 10}).ok());
  EXPECT_FALSE(builder.AddEquivalenceClass({0, 7}, {10, 10}).ok());
  EXPECT_FALSE(builder.AddEquivalenceClass({0, 1}, {10, 0.5}).ok());
}

}  // namespace
}  // namespace blitz
