#include "card/estimator.h"

#include <algorithm>
#include <cstdint>

#include "common/check.h"

namespace blitz {

const char* EstimatorKindName(EstimatorKind kind) {
  switch (kind) {
    case EstimatorKind::kPaperFanout:
      return "paper";
    case EstimatorKind::kSampleHistogram:
      return "hist";
    case EstimatorKind::kNoEstimate:
      return "noest";
  }
  return "unknown";
}

std::optional<EstimatorKind> EstimatorKindFromName(std::string_view name) {
  if (name == "paper") return EstimatorKind::kPaperFanout;
  if (name == "hist") return EstimatorKind::kSampleHistogram;
  if (name == "noest") return EstimatorKind::kNoEstimate;
  return std::nullopt;
}

const char* EstimatorKindNames() { return "paper, hist, noest"; }

void CardinalityEstimator::EstimateAll(std::vector<double>* cards) const {
  const int n = num_relations();
  const std::uint64_t table_size = std::uint64_t{1} << n;
  cards->assign(table_size, 0.0);
  for (std::uint64_t s = 1; s < table_size; ++s) {
    (*cards)[s] = EstimateCardinality(RelSet::FromWord(s));
  }
}

double CardinalityEstimator::EstimateSpanSelectivity(RelSet u, RelSet v) const {
  BLITZ_DCHECK(!u.empty() && !v.empty() && !u.Intersects(v));
  const double denom = EstimateCardinality(u) * EstimateCardinality(v);
  if (!(denom > 0.0)) return 1.0;
  const double sel = EstimateCardinality(u | v) / denom;
  if (!(sel > 0.0)) return 1e-12;  // Underflow: keep it a valid selectivity.
  return std::min(sel, 1.0);
}

}  // namespace blitz
