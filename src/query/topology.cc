#include "query/topology.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/check.h"
#include "common/strings.h"

namespace blitz {

const char* TopologyToString(Topology t) {
  switch (t) {
    case Topology::kChain:
      return "chain";
    case Topology::kCycle:
      return "cycle";
    case Topology::kCyclePlus3:
      return "cycle+3";
    case Topology::kStar:
      return "star";
    case Topology::kClique:
      return "clique";
    case Topology::kGrid:
      return "grid";
  }
  return "unknown";
}

Result<Topology> ParseTopology(std::string_view s) {
  if (s == "chain") return Topology::kChain;
  if (s == "cycle") return Topology::kCycle;
  if (s == "cycle+3" || s == "cycle3") return Topology::kCyclePlus3;
  if (s == "star") return Topology::kStar;
  if (s == "clique") return Topology::kClique;
  if (s == "grid") return Topology::kGrid;
  return Status::InvalidArgument("unknown topology: " + std::string(s));
}

std::vector<int> ChainOrder(int n) {
  std::vector<int> order;
  order.reserve(n);
  const int h = (n + 1) / 2;
  for (int i = 0; i < h; ++i) {
    order.push_back(i);
    if (h + i < n) order.push_back(h + i);
  }
  return order;
}

namespace {

using EdgeList = std::vector<std::pair<int, int>>;

void AddEdge(EdgeList* edges, int a, int b) {
  edges->push_back({std::min(a, b), std::max(a, b)});
}

EdgeList ChainEdges(int n) {
  const std::vector<int> order = ChainOrder(n);
  EdgeList edges;
  for (int i = 0; i + 1 < n; ++i) AddEdge(&edges, order[i], order[i + 1]);
  return edges;
}

}  // namespace

Result<EdgeList> MakeTopologyEdges(Topology t, int n) {
  switch (t) {
    case Topology::kChain: {
      if (n < 2) return Status::InvalidArgument("chain needs n >= 2");
      return ChainEdges(n);
    }
    case Topology::kCycle: {
      if (n < 3) return Status::InvalidArgument("cycle needs n >= 3");
      EdgeList edges = ChainEdges(n);
      const std::vector<int> order = ChainOrder(n);
      AddEdge(&edges, order.front(), order.back());
      return edges;
    }
    case Topology::kCyclePlus3: {
      // The Appendix's "cycle+3" for n = 15 closes the chain
      // (R0-R7) and adds cross-edges R8-R14, R1-R6, R9-R13 — i.e. chain
      // positions (j, n-1-j) for j = 0 (the closure) and j = 1, 2, 3.
      if (n < 9) return Status::InvalidArgument("cycle+3 needs n >= 9");
      EdgeList edges = ChainEdges(n);
      const std::vector<int> order = ChainOrder(n);
      for (int j = 0; j <= 3; ++j) {
        AddEdge(&edges, order[j], order[n - 1 - j]);
      }
      return edges;
    }
    case Topology::kStar: {
      if (n < 2) return Status::InvalidArgument("star needs n >= 2");
      EdgeList edges;
      const int hub = n - 1;  // "Star graphs have predicate connections
                              // between the hub R14 and each other relation."
      for (int i = 0; i < hub; ++i) AddEdge(&edges, hub, i);
      return edges;
    }
    case Topology::kClique: {
      if (n < 2) return Status::InvalidArgument("clique needs n >= 2");
      EdgeList edges;
      for (int i = 0; i < n; ++i) {
        for (int j = i + 1; j < n; ++j) AddEdge(&edges, i, j);
      }
      return edges;
    }
    case Topology::kGrid: {
      if (n < 4) return Status::InvalidArgument("grid needs n >= 4");
      // Near-square lattice: cols = ceil(sqrt(n)).
      const int cols = static_cast<int>(std::ceil(std::sqrt(n)));
      EdgeList edges;
      for (int i = 0; i < n; ++i) {
        const int row = i / cols;
        const int col = i % cols;
        if (col + 1 < cols && i + 1 < n) AddEdge(&edges, i, i + 1);
        if ((row + 1) * cols + col < n) AddEdge(&edges, i, i + cols);
      }
      return edges;
    }
  }
  return Status::InvalidArgument("unknown topology");
}

EdgeList MakeRandomConnectedEdges(int n, double extra_edge_prob, Rng* rng) {
  BLITZ_CHECK(n >= 1);
  EdgeList edges;
  std::vector<bool> present(static_cast<size_t>(n) * n, false);
  auto mark = [&](int a, int b) {
    present[static_cast<size_t>(a) * n + b] = true;
    present[static_cast<size_t>(b) * n + a] = true;
  };
  // Random spanning tree: attach each node to a random earlier node.
  for (int i = 1; i < n; ++i) {
    const int j = rng->NextInt(0, i - 1);
    AddEdge(&edges, i, j);
    mark(i, j);
  }
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (!present[static_cast<size_t>(i) * n + j] &&
          rng->NextBool(extra_edge_prob)) {
        AddEdge(&edges, i, j);
        mark(i, j);
      }
    }
  }
  return edges;
}

}  // namespace blitz
