#ifndef BLITZ_EXEC_OPERATORS_H_
#define BLITZ_EXEC_OPERATORS_H_

#include <cstdint>
#include <vector>

#include "core/relset.h"
#include "exec/relation.h"
#include "plan/plan.h"
#include "query/join_graph.h"

namespace blitz {

/// An intermediate result: for each output tuple, the row ids of the
/// participating base-relation tuples. Row layout: one id per relation in
/// `relations`, in ascending relation order. This representation keeps
/// results small and makes cross-plan result comparison trivial.
struct RowSet {
  RelSet relations;
  std::vector<std::vector<std::uint32_t>> rows;

  std::uint64_t num_rows() const { return rows.size(); }

  /// Position of relation `r` within a row (relations are kept in ascending
  /// order); `r` must be a member.
  int SlotOf(int r) const {
    BLITZ_DCHECK(relations.Contains(r));
    return RelSet::FromWord(relations.word() &
                            ((std::uint64_t{1} << r) - 1))
        .size();
  }
};

/// Scans a base table into a RowSet (row id i for each of its rows).
RowSet ScanTable(const ExecTable& table);

/// A join predicate bound to the operand sides: predicate `predicate_id`
/// between base relation `lhs_relation` (in the left input) and
/// `rhs_relation` (in the right input).
struct BoundPredicate {
  int predicate_id;
  int lhs_relation;
  int rhs_relation;
};

/// Finds the predicates of `graph` spanning the two operand relation sets
/// and binds their endpoints to the correct sides.
std::vector<BoundPredicate> BindSpanningPredicates(const JoinGraph& graph,
                                                   RelSet lhs, RelSet rhs);

/// Joins two RowSets under the given spanning predicates using the chosen
/// algorithm. All algorithms produce the same multiset of output rows:
///  - kCartesianProduct / kNestedLoops: nested loops, verifying every
///    predicate per pair (the product must be given an empty predicate list);
///  - kHash: build/probe on the first predicate, verify the rest;
///  - kSortMerge: sort both inputs on the first predicate's key, merge equal
///    runs, verify the rest.
/// kUnspecified picks hash when predicates exist, nested loops otherwise.
RowSet JoinRowSets(const RowSet& lhs, const RowSet& rhs,
                   const std::vector<BoundPredicate>& predicates,
                   JoinAlgorithm algorithm,
                   const std::vector<ExecTable>& tables);

}  // namespace blitz

#endif  // BLITZ_EXEC_OPERATORS_H_
