# Empty dependencies file for blitzsplit_cartesian_test.
# This may be replaced when dependencies are built.
