#ifndef BLITZ_CORE_BLITZSPLIT_H_
#define BLITZ_CORE_BLITZSPLIT_H_

#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "core/dp_table.h"
#include "core/instrumentation.h"
#include "core/relset.h"
#include "governor/governor.h"
#include "query/join_graph.h"
#include "simd/split_filter.h"

namespace blitz {

// The per-subset kernel must be inlined into each driver's subset loop so the
// model, threshold, and column pointers stay in registers across iterations —
// with two call sites (sequential + rank-parallel driver) the compiler
// otherwise outlines it. The drivers themselves get the opposite treatment:
// left to its own devices the inliner merges them into the large entry-point
// functions, where register pressure from the surrounding tracing/governor
// code degrades the split loop by ~20%; noinline keeps each instantiation a
// standalone function whose registers belong to the hot loop alone.
#if defined(__GNUC__) || defined(__clang__)
#define BLITZ_ALWAYS_INLINE inline __attribute__((always_inline))
#define BLITZ_NOINLINE __attribute__((noinline))
#else
#define BLITZ_ALWAYS_INLINE inline
#define BLITZ_NOINLINE
#endif

namespace internal {

/// The per-subset body of procedure blitzsplit — compute_properties(S)
/// followed by find_best_split(S) — operating on raw DP-table columns.
///
/// Shared verbatim by the sequential integer-order driver below and the
/// rank-synchronous parallel driver (parallel/blitzsplit_ranked.h). The DP
/// recurrences read only rows of strictly smaller cardinality than S (every
/// split side, and the pi_fan operands U|W and U|Z, is a proper subset), and
/// write only row S itself — so any driver that completes all ranks < |S|
/// before processing S may invoke this from any thread: distinct subsets
/// touch disjoint rows, and bit-identical inputs give bit-identical rows
/// regardless of the visit order across subsets of equal cardinality.
/// `split_kernel` (nullable, loop-invariant per pass) is the resolved SIMD
/// build/filter pair from simd/dispatch.h, with `scratch` its dense
/// compaction workspace (non-null iff split_kernel is, capacity >= 2^n).
/// When null — or for subsets below kSimdMinPopcount, or in the flat
/// kNestedIfs=false ablation — the classic scalar loop runs unchanged.
/// When set, the nested-if best-split loop runs batched (simd/
/// split_filter.h): the build stage materializes the successor order as
/// the dense rank -> subset map idx[] and compacts the cost column into
/// dc[] (one gather pass, prefetched); the filter stage then evaluates the
/// model-independent gate
///     cost[lhs] + cost[rhs] < best_cost_so_far
/// as dc[r] + dc[full_rank - r] < best over kSplitFilterBlock-lane blocks
/// of ranks — contiguous loads only — against the block-entry best, and
/// only surviving lanes re-run the exact scalar nested-if body, in rank
/// (= successor) order, against the live best. The filter is conservative
/// (block-entry best >= live best), so survivors are a superset of the
/// scalar loop's passes and the re-run makes identical decisions — the
/// filled row, the best_lhs tie-break (first strict improvement in
/// successor order wins), and the instrumentation counts are bit-identical
/// for every cost model.
/// The extra trailing parameter kExternalCards supports the estimator seam
/// (card/estimator.h): when true, the card column was preloaded by the
/// driver from CardinalityEstimator::EstimateAll and compute_properties
/// reads card[s] instead of deriving it — there is no Pi_fan recurrence to
/// fuse for an arbitrary estimate, so it requires kWithPredicates == false.
/// The find_best_split half (gate, SIMD filter, tie-breaks, counters) is
/// untouched: it only ever reads the cost and card columns.
template <typename CostModel, bool kWithPredicates, bool kNestedIfs,
          typename Instr, bool kExternalCards = false>
BLITZ_ALWAYS_INLINE void BlitzProcessSubset(
    const CostModel& model, const JoinGraph* graph, float cost_threshold,
    std::uint64_t s, float* cost, double* card, std::uint32_t* best,
    double* pi_fan, double* aux, Instr* instr,
    const SplitKernel* split_kernel = nullptr,
    SplitScratch* scratch = nullptr) {
  static_assert(!(kExternalCards && kWithPredicates),
                "external cards replace the Pi_fan recurrence");
  // Phase attribution (ProfilingInstrumentation): ProfBegin charges the
  // inter-subset gap to the driver phase; the marks below partition the
  // body into {table_write, gate_filter, survivor_replay, kappa2} so the
  // buckets sum to the pass wall time. All Prof* hooks are empty inline
  // functions on the production policies.
  instr->ProfBegin(s);
  instr->OnSubsetVisited();

  // --- compute_properties(S) ---------------------------------------
  // U = {min S} = delta_S(1) = S & -S; V = S - U.
  const std::uint64_t u = s & (~s + 1);
  const std::uint64_t v = s ^ u;
  double out_card;
  if constexpr (kExternalCards) {
    // Preloaded by the driver from the estimator; nothing to derive.
    out_card = card[s];
  } else if constexpr (kWithPredicates) {
    double fan;
    if ((v & (v - 1)) == 0) {
      // Doubleton {R,R'}: Pi_fan is the selectivity of the predicate
      // connecting R and R', or 1 if there is none (Section 5.4).
      fan = graph->Selectivity(std::countr_zero(u), std::countr_zero(v));
    } else {
      // Recurrence (10): split V into disjoint W and Z; we use W = {min V}.
      const std::uint64_t w = v & (~v + 1);
      const std::uint64_t z = v ^ w;
      fan = pi_fan[u | w] * pi_fan[u | z];
    }
    pi_fan[s] = fan;
    // Recurrence (11): card(S) = card(U) * card(V) * Pi_fan(S).
    out_card = card[u] * card[v] * fan;
  } else {
    out_card = card[u] * card[v];
  }
  if constexpr (!kExternalCards) card[s] = out_card;
  if constexpr (CostModel::kNeedsAux) aux[s] = CostModel::Aux(out_card);

  // --- find_best_split(S) ------------------------------------------
  // kappa'(S) is split-independent, so compute it before the loop; if it
  // already overflows or reaches the plan-cost threshold, no plan for S
  // can survive, and the loop is avoided entirely (Sections 6.3-6.4).
  const float kappa_prime = static_cast<float>(model.KappaPrime(out_card));
  if (!(kappa_prime < cost_threshold)) {
    cost[s] = kRejectedCost;
    best[s] = 0;
    instr->OnThresholdSkip();
    instr->ProfMark(DpPhase::kTableWrite);
    return;
  }
  // compute_properties, kappa', and the skip-path row write all charge to
  // the table-write phase.
  instr->ProfMark(DpPhase::kTableWrite);

  float best_cost_so_far = kRejectedCost;
  std::uint32_t best_lhs = 0;

  // The exact Section 4.2 nested-if body for one candidate split, against
  // the live best — shared by the classic loop and the blocked filter's
  // survivor re-run so both paths make bit-identical decisions. `ctx` is
  // the phase this call's gate work charges to (gate_filter from the
  // scalar loop, survivor_replay from the SIMD re-run); a dead constant
  // unless the policy profiles.
  const auto try_split_nested = [&](std::uint64_t lhs, DpPhase ctx) {
    const std::uint64_t rhs = s ^ lhs;
    // Nested ifs (Section 4.2): each comparison can dismiss the split
    // before the next, increasingly expensive, quantity is computed.
    const float lhs_cost = cost[lhs];
    if (!(lhs_cost < best_cost_so_far)) return;
    const float oprnd_cost = lhs_cost + cost[rhs];
    if (!(oprnd_cost < best_cost_so_far)) return;
    instr->OnOperandPass();
    instr->ProfMark(ctx);
    float kappa2;
    if constexpr (CostModel::kNeedsAux) {
      kappa2 = static_cast<float>(model.KappaDoublePrime(
          out_card, card[lhs], card[rhs], aux[lhs], aux[rhs]));
    } else {
      kappa2 = static_cast<float>(
          model.KappaDoublePrime(out_card, card[lhs], card[rhs], 0, 0));
    }
    instr->OnKappa2Evaluated();
    const float dpnd_cost = oprnd_cost + kappa2;
    if (dpnd_cost < best_cost_so_far) {
      best_cost_so_far = dpnd_cost;
      best_lhs = static_cast<std::uint32_t>(lhs);
      instr->OnImprovement();
    }
    instr->ProfMark(DpPhase::kKappa2);
  };

  // S_lhs ranges over all nonempty proper subsets of S via the successor
  // operator succ(S_lhs) = S & (S_lhs - S); starting from 0 the first
  // value is S & -S and the sequence ends when S itself is reached.
  if constexpr (kNestedIfs) {
    const int k = std::popcount(s);
    if (split_kernel != nullptr && k >= kSimdMinPopcount) {
      // Batched dense-compaction path (simd/split_filter.h). The proper
      // splits of S are dense ranks 1 .. full_rank - 1, and the successor
      // enumeration the scalar loop performs is exactly increasing rank —
      // u = S & -S is rank 1 — so scanning ranks in blocks and replaying
      // survivors in lane order preserves the visit order the tie-break
      // depends on.
      const std::uint32_t full_rank = (std::uint32_t{1} << k) - 1;
      std::uint32_t* const idx = scratch->idx.data();
      float* const dc = scratch->dc.data();
      split_kernel->build(cost, s, k, idx, dc);
      std::uint32_t r = 1;
      while (r < full_rank) {
        std::uint32_t c = full_rank - r;
        if (c > static_cast<std::uint32_t>(kSplitFilterBlock)) {
          c = static_cast<std::uint32_t>(kSplitFilterBlock);
        }
        instr->OnLoopIterationBlock(c);
        std::uint64_t mask = split_kernel->filter(
            dc, full_rank, r, static_cast<int>(c), best_cost_so_far);
        instr->OnFilterSurvivors(
            c, static_cast<std::uint64_t>(std::popcount(mask)));
        instr->ProfMark(DpPhase::kGateFilter);
        while (mask != 0) {
          const int lane = std::countr_zero(mask);
          mask &= mask - 1;
          try_split_nested(idx[r + static_cast<std::uint32_t>(lane)],
                           DpPhase::kSurvivorReplay);
        }
        instr->ProfMark(DpPhase::kSurvivorReplay);
        r += c;
      }
    } else {
      for (std::uint64_t lhs = u; lhs != s; lhs = s & (lhs - s)) {
        instr->OnLoopIteration();
        try_split_nested(lhs, DpPhase::kGateFilter);
      }
      instr->ProfMark(DpPhase::kGateFilter);
    }
  } else {
    // Flat variant for the nested-if ablation: kappa'' is evaluated on
    // every one of the ~3^n iterations, so there is no cheap
    // model-independent gate for a SIMD filter to batch.
    for (std::uint64_t lhs = u; lhs != s; lhs = s & (lhs - s)) {
      instr->OnLoopIteration();
      const std::uint64_t rhs = s ^ lhs;
      const float oprnd_cost = cost[lhs] + cost[rhs];
      instr->OnOperandPass();
      float kappa2;
      if constexpr (CostModel::kNeedsAux) {
        kappa2 = static_cast<float>(model.KappaDoublePrime(
            out_card, card[lhs], card[rhs], aux[lhs], aux[rhs]));
      } else {
        kappa2 = static_cast<float>(
            model.KappaDoublePrime(out_card, card[lhs], card[rhs], 0, 0));
      }
      instr->OnKappa2Evaluated();
      const float dpnd_cost = oprnd_cost + kappa2;
      if (dpnd_cost < best_cost_so_far) {
        best_cost_so_far = dpnd_cost;
        best_lhs = static_cast<std::uint32_t>(lhs);
        instr->OnImprovement();
      }
    }
    // The flat ablation has no gate; its whole loop charges to kappa2.
    instr->ProfMark(DpPhase::kKappa2);
  }

  float total = best_cost_so_far + kappa_prime;
  // Reject plans whose cost overflows single precision (Section 6.3) or
  // reaches the simulated-overflow threshold (Section 6.4).
  if (!(total < cost_threshold)) total = kRejectedCost;
  cost[s] = total;
  best[s] = best_lhs;
  instr->ProfMark(DpPhase::kTableWrite);
}

/// First loop of procedure blitzsplit: init_singleton for each relation.
/// Shared by the sequential and rank-parallel drivers.
template <typename CostModel, bool kWithPredicates>
inline void BlitzInitSingletons(const std::vector<double>& base_cards,
                                float* cost, double* card,
                                std::uint32_t* best, double* pi_fan,
                                double* aux) {
  const int n = static_cast<int>(base_cards.size());
  for (int i = 0; i < n; ++i) {
    const std::uint64_t w = std::uint64_t{1} << i;
    card[w] = base_cards[i];
    cost[w] = 0.0f;
    best[w] = 0;
    if constexpr (kWithPredicates) pi_fan[w] = 1.0;
    if constexpr (CostModel::kNeedsAux) aux[w] = CostModel::Aux(base_cards[i]);
  }
}

/// Validates the (problem, table, configuration) contract shared by both
/// drivers. Checks are debug-build assertions via BLITZ_CHECK.
template <typename CostModel, bool kWithPredicates>
inline void BlitzCheckPass(const std::vector<double>& base_cards,
                           const JoinGraph* graph, const DpTable& table) {
  const int n = static_cast<int>(base_cards.size());
  BLITZ_CHECK(n >= 1 && n <= kMaxRelations);
  BLITZ_CHECK(table.num_relations() == n);
  BLITZ_CHECK((graph != nullptr) == kWithPredicates);
  BLITZ_CHECK(table.has_pi_fan() == kWithPredicates);
  BLITZ_CHECK(table.has_aux() == CostModel::kNeedsAux);
}

}  // namespace internal

/// The blitzsplit dynamic programming core (Figure 1 of the paper, with the
/// Section 4 lightweight realization and the Section 5 join extension).
///
/// Fills `table` bottom-up for every nonempty subset of the n relations whose
/// base cardinalities are given. Returns the cost of the best plan for the
/// full set (kRejectedCost if every plan was rejected by the threshold).
///
/// Template parameters:
///   CostModel        — a cost-model policy from cost/cost_model.h, supplying
///                      the kappa = kappa' + kappa'' decomposition.
///   kWithPredicates  — false reproduces the pure Cartesian-product optimizer
///                      of Sections 3-4 (no Pi_fan column, one multiplication
///                      in compute_properties); true adds the Section 5
///                      selectivity recurrences (three multiplications).
///   kNestedIfs       — true uses the Section 4.2 nested-if short-circuiting
///                      in find_best_split; false evaluates kappa'' on every
///                      loop iteration (the ablation of Section 6.2).
///   Instr            — instrumentation policy (NoInstrumentation or
///                      CountingInstrumentation).
///
/// `cost_threshold` implements Section 6.4: any subset whose
/// split-independent cost kappa'(S) already reaches the threshold has its
/// best-split loop skipped entirely, and any completed cost reaching the
/// threshold is rejected (set to kRejectedCost). Passing +infinity leaves
/// only the genuine float-overflow rejection of Section 6.3, which is the
/// same code path (overflowed costs compare >= +infinity... they *are*
/// +infinity).
///
/// `governor` (nullable) is the resource governor's cooperative-cancellation
/// hook: when non-null, the outer subset loop calls GovernorState::Tick()
/// once per visited subset — a counter decrement that performs the real
/// deadline/cancellation check only every kCheckStride subsets, keeping the
/// O(3^n) inner loop at paper speed — and returns kRejectedCost as soon as
/// the governor aborts. The caller distinguishes a governed abort from a
/// genuine all-plans-rejected outcome via governor->aborted(); an aborted
/// table is partially filled but safe to reuse for a fresh in-place pass,
/// which rewrites every row in the same integer order.
///
/// `split_kernel` (nullable) is the resolved SIMD build/filter pair for
/// the model-independent best-split gate, from simd/dispatch.h — resolved
/// once per optimizer pass (cpuid probe, BLITZ_SIMD override) by the
/// dispatch layer in core/optimizer.cc. Null runs the classic scalar
/// loop; any kernel produces a bit-identical table and identical
/// instrumentation counts (see BlitzProcessSubset). Meaningful only with
/// kNestedIfs. The driver owns the kernel's dense-compaction scratch
/// (2^n ranks at 8 bytes, allocated only when a kernel is active).
///
/// For the multicore rank-synchronous variant of this driver see
/// parallel/blitzsplit_ranked.h; both produce bit-identical tables.
///
/// Requirements: base_cards.size() == n in [1, kMaxRelations]; graph non-null
/// iff kWithPredicates; the table must have been created with matching
/// columns (pi_fan iff kWithPredicates, aux iff CostModel::kNeedsAux).
template <typename CostModel, bool kWithPredicates, bool kNestedIfs = true,
          typename Instr = NoInstrumentation>
BLITZ_NOINLINE float RunBlitzSplit(const CostModel& model,
                    const std::vector<double>& base_cards,
                    const JoinGraph* graph, float cost_threshold,
                    DpTable* table, Instr* instr,
                    GovernorState* governor = nullptr,
                    const SplitKernel* split_kernel = nullptr) {
  internal::BlitzCheckPass<CostModel, kWithPredicates>(base_cards, graph,
                                                       *table);
  const int n = static_cast<int>(base_cards.size());

  SplitScratch scratch;
  if constexpr (kNestedIfs) {
    if (split_kernel != nullptr && n >= kSimdMinPopcount) {
      scratch.EnsureCapacity(n);
    } else {
      split_kernel = nullptr;  // No subset can reach the popcount gate.
    }
  } else {
    split_kernel = nullptr;  // The flat ablation has no gate to batch.
  }

  float* const cost = table->cost_data();
  double* const card = table->card_data();
  std::uint32_t* const best = table->best_lhs_data();
  double* const pi_fan = kWithPredicates ? table->pi_fan_data() : nullptr;
  double* const aux = CostModel::kNeedsAux ? table->aux_data() : nullptr;

  internal::BlitzInitSingletons<CostModel, kWithPredicates>(
      base_cards, cost, card, best, pi_fan, aux);

  const std::uint64_t full = (std::uint64_t{1} << n) - 1;
  if (n == 1) {
    instr->ProfPassEnd();
    return cost[full];
  }

  // Second loop, realized as in Section 4.2: process the sets in the order
  // of their integer representations, skipping powers of two (singletons).
  // Integer order guarantees all subsets of S are filled in before S.
  for (std::uint64_t s = 3; s <= full; ++s) {
    if ((s & (s - 1)) == 0) continue;  // singleton — already initialized
    if (governor != nullptr && governor->Tick()) {
      instr->ProfPassEnd();
      return kRejectedCost;
    }
    internal::BlitzProcessSubset<CostModel, kWithPredicates, kNestedIfs>(
        model, graph, cost_threshold, s, cost, card, best, pi_fan, aux,
        instr, split_kernel, &scratch);
  }
  instr->ProfPassEnd();
  return cost[full];
}

/// Sequential driver over externally-supplied per-subset cardinalities —
/// the non-exact half of the estimator seam. `all_cards` (size 2^n, indexed
/// by set word, entry 0 ignored) comes from CardinalityEstimator::
/// EstimateAll; the driver preloads the table's card column from it and
/// runs the same find_best_split machinery (threshold pre-skip, SIMD gate
/// filter, nested ifs, governor ticks) with the Pi_fan recurrence compiled
/// out. The exact PaperFanoutEstimator never takes this path — it rides the
/// fused RunBlitzSplit above, which is what keeps the default configuration
/// bit-identical. Requirements: the table must have been created without a
/// pi_fan column (aux iff CostModel::kNeedsAux), every estimate must be
/// positive and finite, and all_cards[1<<i] supplies the singleton rows.
template <typename CostModel, bool kNestedIfs = true,
          typename Instr = NoInstrumentation>
BLITZ_NOINLINE float RunBlitzSplitWithCards(
    const CostModel& model, const std::vector<double>& all_cards,
    float cost_threshold, DpTable* table, Instr* instr,
    GovernorState* governor = nullptr,
    const SplitKernel* split_kernel = nullptr) {
  const int n = table->num_relations();
  BLITZ_CHECK(n >= 1 && n <= kMaxRelations);
  BLITZ_CHECK(all_cards.size() == (std::uint64_t{1} << n));
  BLITZ_CHECK(!table->has_pi_fan());
  BLITZ_CHECK(table->has_aux() == CostModel::kNeedsAux);

  SplitScratch scratch;
  if constexpr (kNestedIfs) {
    if (split_kernel != nullptr && n >= kSimdMinPopcount) {
      scratch.EnsureCapacity(n);
    } else {
      split_kernel = nullptr;  // No subset can reach the popcount gate.
    }
  } else {
    split_kernel = nullptr;  // The flat ablation has no gate to batch.
  }

  float* const cost = table->cost_data();
  double* const card = table->card_data();
  std::uint32_t* const best = table->best_lhs_data();
  double* const aux = CostModel::kNeedsAux ? table->aux_data() : nullptr;

  // Preload every row's cardinality, then initialize the singleton rows.
  const std::uint64_t full = (std::uint64_t{1} << n) - 1;
  for (std::uint64_t s = 1; s <= full; ++s) card[s] = all_cards[s];
  for (int i = 0; i < n; ++i) {
    const std::uint64_t w = std::uint64_t{1} << i;
    cost[w] = 0.0f;
    best[w] = 0;
    if constexpr (CostModel::kNeedsAux) aux[w] = CostModel::Aux(card[w]);
  }
  if (n == 1) {
    instr->ProfPassEnd();
    return cost[full];
  }

  for (std::uint64_t s = 3; s <= full; ++s) {
    if ((s & (s - 1)) == 0) continue;  // singleton — already initialized
    if (governor != nullptr && governor->Tick()) {
      instr->ProfPassEnd();
      return kRejectedCost;
    }
    internal::BlitzProcessSubset<CostModel, /*kWithPredicates=*/false,
                                 kNestedIfs, Instr, /*kExternalCards=*/true>(
        model, /*graph=*/nullptr, cost_threshold, s, cost, card, best,
        /*pi_fan=*/nullptr, aux, instr, split_kernel, &scratch);
  }
  instr->ProfPassEnd();
  return cost[full];
}

}  // namespace blitz

#endif  // BLITZ_CORE_BLITZSPLIT_H_
