// Tests for the graceful-degradation ladder in OptimizeQuery and for
// DP-table consistency after budget-aborted passes (the robustness
// contract: an over-budget query never crashes or hangs — it returns a
// fallback-tier plan and the report names the tier).

#include <gtest/gtest.h>

#include <string>

#include "api/optimize_query.h"
#include "core/optimizer.h"
#include "governor/faultpoints.h"
#include "obs/metrics.h"
#include "plan/plan.h"
#include "test_util.h"

namespace blitz {
namespace {

std::uint64_t Counter(const MetricsSnapshot& snapshot,
                      std::string_view name) {
  for (const auto& [key, value] : snapshot.counters) {
    if (key == name) return value;
  }
  return 0;
}

TEST(OptimizerTierTest, Names) {
  EXPECT_STREQ(OptimizerTierName(OptimizerTier::kExhaustive), "exhaustive");
  EXPECT_STREQ(OptimizerTierName(OptimizerTier::kHybrid), "hybrid");
  EXPECT_STREQ(OptimizerTierName(OptimizerTier::kGreedy), "greedy");
}

TEST(DegradationTest, MemoryCapDegradesToHybrid) {
  const testing::RandomInstance instance =
      testing::MakeRandomInstance(10, /*seed=*/21);
  QueryOptimizerOptions options;
  options.collect_report = true;
  options.budget.max_dp_table_bytes = 1024;
  Result<OptimizedQuery> result =
      OptimizeQuery(instance.catalog, instance.graph, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->tier, OptimizerTier::kHybrid);
  EXPECT_FALSE(result->exact());
  EXPECT_GT(result->cost, 0);
  ASSERT_TRUE(result->report.has_value());
  EXPECT_EQ(result->report->tiers_attempted, 2);
  ASSERT_EQ(result->report->degradations.size(), 1u);
  EXPECT_NE(result->report->degradations[0].find("exhaustive"),
            std::string::npos);
  EXPECT_NE(result->report->degradations[0].find("ResourceExhausted"),
            std::string::npos);
  // The report string names the serving tier for operators.
  EXPECT_NE(result->ReportToString().find("tier hybrid"),
            std::string::npos);
}

TEST(DegradationTest, DeadlineDegradesAllTheWayToGreedy) {
  // A zero deadline is already expired when each tier's entry gate runs;
  // exhaustive and hybrid both fail fast and the polynomial greedy tier
  // (last resort, ungoverned) still serves the query.
  const testing::RandomInstance instance =
      testing::MakeRandomInstance(9, /*seed=*/22);
  QueryOptimizerOptions options;
  options.collect_report = true;
  options.budget.deadline_seconds = 0;
  Result<OptimizedQuery> result =
      OptimizeQuery(instance.catalog, instance.graph, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->tier, OptimizerTier::kGreedy);
  EXPECT_FALSE(result->exact());
  ASSERT_TRUE(result->report.has_value());
  EXPECT_EQ(result->report->tiers_attempted, 3);
  EXPECT_EQ(result->report->degradations.size(), 2u);
}

TEST(DegradationTest, ThresholdLadderUnderMemoryCapDegradesToo) {
  const testing::RandomInstance instance =
      testing::MakeRandomInstance(10, /*seed=*/23);
  QueryOptimizerOptions options;
  options.collect_report = true;
  options.initial_cost_threshold = 100.0f;
  options.budget.max_dp_table_bytes = 1024;
  Result<OptimizedQuery> result =
      OptimizeQuery(instance.catalog, instance.graph, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->tier, OptimizerTier::kHybrid);
}

TEST(DegradationTest, CancellationNeverDegrades) {
  CancellationToken token;
  token.Cancel();
  const testing::RandomInstance instance =
      testing::MakeRandomInstance(8, /*seed=*/24);
  QueryOptimizerOptions options;
  options.budget.cancellation = &token;
  Result<OptimizedQuery> result =
      OptimizeQuery(instance.catalog, instance.graph, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST(DegradationTest, DegradationOffSurfacesBudgetError) {
  const testing::RandomInstance instance =
      testing::MakeRandomInstance(10, /*seed=*/25);
  QueryOptimizerOptions options;
  options.degrade_on_budget = false;
  options.budget.max_dp_table_bytes = 1024;
  Result<OptimizedQuery> result =
      OptimizeQuery(instance.catalog, instance.graph, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(DegradationTest, UngovernedQueriesUnaffectedByLadderMachinery) {
  const testing::RandomInstance instance =
      testing::MakeRandomInstance(8, /*seed=*/26);
  QueryOptimizerOptions options;
  options.collect_report = true;
  Result<OptimizedQuery> result =
      OptimizeQuery(instance.catalog, instance.graph, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tier, OptimizerTier::kExhaustive);
  EXPECT_TRUE(result->exact());
  EXPECT_EQ(result->report->tiers_attempted, 1);
  EXPECT_TRUE(result->report->degradations.empty());
}

TEST(DegradationTest, MetricsRecordDegradationAndServingTier) {
  MetricsRegistry metrics;
  SetGlobalMetrics(&metrics);
  const testing::RandomInstance instance =
      testing::MakeRandomInstance(10, /*seed=*/27);
  QueryOptimizerOptions options;
  options.budget.max_dp_table_bytes = 1024;
  Result<OptimizedQuery> result =
      OptimizeQuery(instance.catalog, instance.graph, options);
  SetGlobalMetrics(nullptr);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const MetricsSnapshot snapshot = metrics.TakeSnapshot();
  EXPECT_GE(Counter(snapshot, "governor.admission_rejected"), 1u);
  EXPECT_GE(Counter(snapshot, "api.degradations"), 1u);
  EXPECT_GE(Counter(snapshot, "api.tier_hybrid"), 1u);
  EXPECT_EQ(Counter(snapshot, "api.tier_exhaustive"), 0u);
}

// Satellite contract: a budget-aborted pass mid-threshold-ladder leaves the
// DP table in a state ReoptimizeJoinInPlace can consume — the next clean
// pass reproduces the clean-run optimum exactly.
TEST(DegradationTest, AbortedPassLeavesTableReusable) {
  if (!kFaultInjectionCompiled) {
    GTEST_SKIP() << "built with BLITZ_FAULT_INJECTION=OFF";
  }
  const testing::RandomInstance instance =
      testing::MakeRandomInstance(12, /*seed=*/28);

  // Clean run: the reference optimum and a fully-populated table.
  Result<OptimizeOutcome> clean =
      OptimizeJoin(instance.catalog, instance.graph, OptimizerOptions{});
  ASSERT_TRUE(clean.ok());
  const float clean_cost = clean->cost;

  // Governed re-optimization that dies mid-pass: after=1 passes the entry
  // gate and fires a spurious cancellation at the first amortized stride
  // check (subset kCheckStride of 4096). The pass also runs under a tight
  // cost threshold so the rows it did rewrite genuinely differ from the
  // clean table's.
  FaultRegistry registry;
  ScopedFaultRegistry scoped(&registry);
  FaultSpec spec;
  spec.kind = FaultKind::kCancel;
  spec.after = 1;
  registry.Arm(kFaultGovernorCheck, spec);
  OptimizerOptions aborted_options;
  aborted_options.budget.deadline_seconds = 3600;
  aborted_options.cost_threshold = clean_cost / 2;
  Result<float> aborted =
      ReoptimizeJoinInPlace(instance.catalog, instance.graph,
                            aborted_options, &clean->table, nullptr);
  ASSERT_FALSE(aborted.ok());
  EXPECT_EQ(aborted.status().code(), StatusCode::kCancelled);
  EXPECT_GE(registry.hits(kFaultGovernorCheck), 2u);

  // The partially-overwritten table is reusable: a clean in-place pass
  // rewrites every row and lands back on the reference optimum, and plan
  // extraction succeeds.
  Result<float> recovered = ReoptimizeJoinInPlace(
      instance.catalog, instance.graph, OptimizerOptions{}, &clean->table,
      nullptr);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(*recovered, clean_cost);
  Result<Plan> plan = Plan::ExtractFromTable(clean->table);
  EXPECT_TRUE(plan.ok());
}

// Full-ladder fault drill: hybrid is forced down too, so the query is
// served by the greedy tier with two recorded degradation steps.
TEST(DegradationTest, FaultedHybridFallsThroughToGreedy) {
  if (!kFaultInjectionCompiled) {
    GTEST_SKIP() << "built with BLITZ_FAULT_INJECTION=OFF";
  }
  FaultRegistry registry;
  ScopedFaultRegistry scoped(&registry);
  FaultSpec spec;
  spec.kind = FaultKind::kFailStatus;
  spec.status = Status::ResourceExhausted("injected block failure");
  registry.Arm(kFaultHybridRun, spec);

  const testing::RandomInstance instance =
      testing::MakeRandomInstance(10, /*seed=*/29);
  QueryOptimizerOptions options;
  options.collect_report = true;
  options.budget.max_dp_table_bytes = 1024;
  Result<OptimizedQuery> result =
      OptimizeQuery(instance.catalog, instance.graph, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->tier, OptimizerTier::kGreedy);
  EXPECT_EQ(result->report->tiers_attempted, 3);
  EXPECT_EQ(result->report->degradations.size(), 2u);
}

}  // namespace
}  // namespace blitz
