#include "baseline/local_search.h"

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "baseline/bruteforce.h"
#include "baseline/random_plans.h"
#include "plan/evaluate.h"
#include "test_util.h"

namespace blitz {
namespace {

using ::blitz::testing::MakeRandomInstance;

TEST(ApplyRandomMoveTest, PreservesRelationSet) {
  Rng rng(3);
  const RelSet all = RelSet::FirstN(8);
  Plan plan = RandomBushyPlan(all, &rng);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(ApplyRandomMove(&plan, &rng));
    ASSERT_EQ(plan.relations(), all);
    ASSERT_EQ(plan.NumLeaves(), 8);
  }
}

TEST(ApplyRandomMoveTest, InternalSetsStayConsistent) {
  Rng rng(5);
  Plan plan = RandomBushyPlan(RelSet::FirstN(7), &rng);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(ApplyRandomMove(&plan, &rng));
    // Every internal node's set must be the union of its children's sets,
    // and children must be disjoint.
    std::function<void(const PlanNode&)> check = [&](const PlanNode& node) {
      if (node.is_leaf()) return;
      ASSERT_FALSE(node.left->set.Intersects(node.right->set));
      ASSERT_EQ(node.set, node.left->set | node.right->set);
      check(*node.left);
      check(*node.right);
    };
    check(plan.root());
  }
}

TEST(ApplyRandomMoveTest, SingleLeafHasNoMoves) {
  Rng rng(1);
  Plan plan = Plan::Leaf(0);
  EXPECT_FALSE(ApplyRandomMove(&plan, &rng));
}

TEST(ApplyRandomMoveTest, NeighborhoodReachesDifferentShapes) {
  Rng rng(9);
  Plan plan = RandomBushyPlan(RelSet::FirstN(5), &rng);
  const Plan original = plan.Clone();
  bool changed = false;
  for (int i = 0; i < 20 && !changed; ++i) {
    ApplyRandomMove(&plan, &rng);
    changed = !plan.StructurallyEquals(original);
  }
  EXPECT_TRUE(changed);
}

TEST(IterativeImprovementTest, ReachesReasonableQuality) {
  const auto instance = MakeRandomInstance(9, 21);
  LocalSearchOptions options;
  options.seed = 77;
  options.max_moves = 8000;
  options.restarts = 6;
  Result<LocalSearchResult> result = OptimizeIterativeImprovement(
      instance.catalog, instance.graph, CostModelKind::kNaive, options);
  Result<BruteForceResult> brute = OptimizeBruteForce(
      instance.catalog, instance.graph, CostModelKind::kNaive);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(brute.ok());
  EXPECT_GE(result->cost, brute->cost * (1 - 1e-9));
  // Local search should land within a couple of orders of magnitude on a
  // 9-relation problem with a healthy move budget.
  EXPECT_LE(result->cost, brute->cost * 100);
  EXPECT_GT(result->moves_evaluated, 0);
  const double evaluated = EvaluateCost(result->plan, instance.catalog,
                                        instance.graph, CostModelKind::kNaive);
  EXPECT_NEAR(evaluated, result->cost, 1e-9 * std::max(1.0, evaluated));
}

TEST(IterativeImprovementTest, RespectsMoveBudget) {
  const auto instance = MakeRandomInstance(8, 5);
  LocalSearchOptions options;
  options.max_moves = 100;
  Result<LocalSearchResult> result = OptimizeIterativeImprovement(
      instance.catalog, instance.graph, CostModelKind::kNaive, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->moves_evaluated, 100);
}

TEST(IterativeImprovementTest, DeterministicForSeed) {
  const auto instance = MakeRandomInstance(7, 6);
  LocalSearchOptions options;
  options.seed = 13;
  options.max_moves = 1000;
  Result<LocalSearchResult> a = OptimizeIterativeImprovement(
      instance.catalog, instance.graph, CostModelKind::kNaive, options);
  Result<LocalSearchResult> b = OptimizeIterativeImprovement(
      instance.catalog, instance.graph, CostModelKind::kNaive, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->cost, b->cost);
  EXPECT_TRUE(a->plan.StructurallyEquals(b->plan));
}

TEST(SimulatedAnnealingTest, ReachesReasonableQuality) {
  const auto instance = MakeRandomInstance(9, 31);
  LocalSearchOptions options;
  options.seed = 99;
  options.max_moves = 8000;
  Result<LocalSearchResult> result = OptimizeSimulatedAnnealing(
      instance.catalog, instance.graph, CostModelKind::kNaive, options);
  Result<BruteForceResult> brute = OptimizeBruteForce(
      instance.catalog, instance.graph, CostModelKind::kNaive);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(brute.ok());
  EXPECT_GE(result->cost, brute->cost * (1 - 1e-9));
  EXPECT_LE(result->cost, brute->cost * 100);
}

TEST(SimulatedAnnealingTest, BestPlanCostMatchesEvaluator) {
  const auto instance = MakeRandomInstance(8, 14);
  LocalSearchOptions options;
  options.max_moves = 2000;
  Result<LocalSearchResult> result = OptimizeSimulatedAnnealing(
      instance.catalog, instance.graph, CostModelKind::kSortMerge, options);
  ASSERT_TRUE(result.ok());
  const double evaluated =
      EvaluateCost(result->plan, instance.catalog, instance.graph,
                   CostModelKind::kSortMerge);
  EXPECT_NEAR(evaluated, result->cost, 1e-9 * std::max(1.0, evaluated));
}

TEST(LocalSearchTest, MismatchedGraphRejected) {
  const auto instance = MakeRandomInstance(5, 1);
  const JoinGraph wrong(4);
  EXPECT_FALSE(OptimizeIterativeImprovement(instance.catalog, wrong,
                                            CostModelKind::kNaive, {})
                   .ok());
  EXPECT_FALSE(OptimizeSimulatedAnnealing(instance.catalog, wrong,
                                          CostModelKind::kNaive, {})
                   .ok());
}

}  // namespace
}  // namespace blitz
