#include "benchlib/sweep.h"

#include <utility>

#include "common/check.h"

namespace blitz {

Result<std::vector<SweepPoint>> RunSweep(const SweepConfig& config) {
  std::vector<SweepPoint> points;
  for (const CostModelKind model : config.models) {
    for (const Topology topology : config.topologies) {
      for (const double variability : config.variabilities) {
        for (const double mean_cardinality : config.mean_cardinalities) {
          WorkloadSpec spec;
          spec.num_relations = config.num_relations;
          spec.topology = topology;
          spec.mean_cardinality = mean_cardinality;
          spec.variability = variability;
          Result<Workload> workload = MakeWorkload(spec);
          if (!workload.ok()) return workload.status();

          OptimizerOptions options;
          options.cost_model = model;

          SweepPoint point;
          point.model = model;
          point.topology = topology;
          point.mean_cardinality = mean_cardinality;
          point.variability = variability;

          Status failure = Status::OK();
          TimingResult timing;
          if (config.threshold.has_value()) {
            ThresholdLadderOptions ladder;
            ladder.initial_threshold = *config.threshold;
            ladder.growth_factor = config.threshold_growth;
            timing = TimeIt(
                [&] {
                  Result<LadderOutcome> outcome = OptimizeJoinWithThresholds(
                      workload->catalog, workload->graph, options, ladder);
                  if (!outcome.ok()) {
                    failure = outcome.status();
                    return;
                  }
                  point.plan_cost = outcome->outcome.cost;
                  point.passes = outcome->passes;
                },
                config.min_seconds_per_point);
          } else {
            timing = TimeIt(
                [&] {
                  Result<OptimizeOutcome> outcome =
                      OptimizeJoin(workload->catalog, workload->graph,
                                   options);
                  if (!outcome.ok()) {
                    failure = outcome.status();
                    return;
                  }
                  point.plan_cost = outcome->cost;
                },
                config.min_seconds_per_point);
          }
          if (!failure.ok()) return failure;
          point.seconds = timing.seconds_per_run;
          point.repetitions = timing.repetitions;
          points.push_back(point);
        }
      }
    }
  }
  return points;
}

}  // namespace blitz
