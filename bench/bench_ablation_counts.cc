// Ablation for Sections 3.3 and 6.2: measured operation counts of the
// blitzsplit inner loop against the paper's analytical predictions.
//
//  * Loop iterations are exactly 3^n - 2*2^n + 1 regardless of input.
//  * Improvements ("conditionally executed code") should track the
//    random-order expectation (ln2/2) n 2^n + gamma 2^n.
//  * kappa'' evaluations lie between the improvement count and the loop
//    count; low mean cardinality pushes the count towards 3^n (closely
//    spaced costs defeat the operand-cost short-circuit), high cardinality
//    pulls it towards (ln2/2) n 2^n.
//
// Environment knobs: BLITZ_COUNTS_N (default 14).

#include <cstdio>

#include "benchlib/table_out.h"
#include "benchlib/timing.h"
#include "common/math_util.h"
#include "common/strings.h"
#include "core/optimizer.h"
#include "query/workload.h"

namespace blitz {
namespace {

int Run() {
  const int n = BenchEnvInt("BLITZ_COUNTS_N", 14);
  std::printf(
      "Operation-count ablation at n = %d (Sections 3.3 / 6.2)\n"
      "predicted loop iterations  3^n - 2*2^n + 1 = %.0f\n"
      "predicted improvements (ln2/2) n 2^n + g 2^n = %.0f\n\n",
      n, Pow3(n) - 2 * Pow2(n) + 1, ExpectedCondCount(n));

  TextTable out;
  out.SetHeader({"model", "topology", "mean card", "loop iters", "kappa''",
                 "improvements", "kappa''/3^n", "kappa''/cond"});

  for (const CostModelKind model :
       {CostModelKind::kNaive, CostModelKind::kSortMerge,
        CostModelKind::kDiskNestedLoops}) {
    for (const Topology topology : {Topology::kChain, Topology::kClique}) {
      for (const double mean : {1.0, 100.0, 1e6}) {
        WorkloadSpec spec;
        spec.num_relations = n;
        spec.topology = topology;
        spec.mean_cardinality = mean;
        spec.variability = 0;
        Result<Workload> workload = MakeWorkload(spec);
        if (!workload.ok()) continue;
        OptimizerOptions options;
        options.cost_model = model;
        options.count_operations = true;
        Result<OptimizeOutcome> outcome =
            OptimizeJoin(workload->catalog, workload->graph, options);
        if (!outcome.ok()) continue;
        const CountingInstrumentation& c = outcome->counters;
        out.AddRow(
            {CostModelKindToString(model), TopologyToString(topology),
             StrFormat("%.3g", mean),
             StrFormat("%llu",
                       static_cast<unsigned long long>(c.loop_iterations)),
             StrFormat("%llu", static_cast<unsigned long long>(
                                   c.kappa2_evaluations)),
             StrFormat("%llu",
                       static_cast<unsigned long long>(c.improvements)),
             StrFormat("%.3f", c.kappa2_evaluations / Pow3(n)),
             StrFormat("%.2f",
                       c.kappa2_evaluations / ExpectedCondCount(n))});
      }
    }
  }
  std::printf("%s\n", out.ToString().c_str());
  std::printf(
      "Reading: kappa''/3^n near 1 means the nested ifs bought nothing\n"
      "(closely spaced costs, low cardinality); small values mean most\n"
      "splits were dismissed from operand costs alone.\n");
  return 0;
}

}  // namespace
}  // namespace blitz

int main() { return blitz::Run(); }
