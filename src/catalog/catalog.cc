#include "catalog/catalog.h"

#include <cmath>
#include <set>
#include <utility>

#include "common/strings.h"

namespace blitz {

Status ValidateRelationCardinality(const std::string& name,
                                   double cardinality) {
  if (!(cardinality > 0) || !std::isfinite(cardinality)) {
    return Status::InvalidArgument(
        StrFormat("relation %s has invalid cardinality %g (must be a "
                  "positive finite number)",
                  name.c_str(), cardinality));
  }
  return Status::OK();
}

Result<Catalog> Catalog::Create(std::vector<RelationStats> relations) {
  if (relations.empty()) {
    return Status::InvalidArgument("catalog must contain at least 1 relation");
  }
  if (static_cast<int>(relations.size()) > kMaxRelations) {
    return Status::InvalidArgument(
        StrFormat("too many relations: %zu (max %d)", relations.size(),
                  kMaxRelations));
  }
  std::set<std::string> names;
  for (size_t i = 0; i < relations.size(); ++i) {
    RelationStats& r = relations[i];
    if (r.name.empty()) r.name = "R" + std::to_string(i);
    BLITZ_RETURN_IF_ERROR(ValidateRelationCardinality(r.name, r.cardinality));
    if (r.tuple_bytes <= 0) {
      return Status::InvalidArgument(
          StrFormat("relation %s has invalid tuple width %d", r.name.c_str(),
                    r.tuple_bytes));
    }
    if (!names.insert(r.name).second) {
      return Status::InvalidArgument("duplicate relation name: " + r.name);
    }
  }
  Catalog catalog;
  catalog.relations_ = std::move(relations);
  return catalog;
}

Result<Catalog> Catalog::FromCardinalities(
    const std::vector<double>& cardinalities) {
  std::vector<RelationStats> relations;
  relations.reserve(cardinalities.size());
  for (size_t i = 0; i < cardinalities.size(); ++i) {
    relations.push_back(RelationStats{"R" + std::to_string(i),
                                      cardinalities[i], /*tuple_bytes=*/64});
  }
  return Create(std::move(relations));
}

int Catalog::FindByName(const std::string& name) const {
  for (int i = 0; i < num_relations(); ++i) {
    if (relations_[i].name == name) return i;
  }
  return -1;
}

double Catalog::GeometricMeanCardinality() const {
  double log_sum = 0;
  for (const RelationStats& r : relations_) log_sum += std::log(r.cardinality);
  return std::exp(log_sum / num_relations());
}

}  // namespace blitz
