#include "benchlib/bench_diff.h"

#include "common/strings.h"

namespace blitz {

bool IsTimeUnit(std::string_view unit) {
  return unit == "ms" || unit == "us" || unit == "ns" || unit == "seconds" ||
         unit == "s";
}

BenchDiffResult DiffBenchReports(const BenchReport& baseline,
                                 const BenchReport& candidate,
                                 const BenchDiffOptions& options) {
  BenchDiffResult result;
  for (const BenchPoint& base : baseline.points) {
    if (!IsTimeUnit(base.unit)) continue;
    const BenchPoint* cand = candidate.Find(base.key);
    if (cand == nullptr || cand->unit != base.unit) {
      result.missing_keys.push_back(base.key);
      continue;
    }
    BenchDiffEntry entry;
    entry.key = base.key;
    entry.unit = base.unit;
    entry.baseline = base.value;
    entry.candidate = cand->value;
    entry.ratio = base.value > 0 ? cand->value / base.value : 1.0;
    entry.below_noise_floor = base.value < options.min_value &&
                              cand->value < options.min_value;
    if (!entry.below_noise_floor) {
      entry.regressed = entry.ratio > options.max_ratio;
      entry.improved =
          options.note_improvements && entry.ratio < 1.0 / options.max_ratio;
    }
    result.regressions += entry.regressed ? 1 : 0;
    result.improvements += entry.improved ? 1 : 0;
    result.entries.push_back(std::move(entry));
  }
  for (const BenchPoint& point : candidate.points) {
    if (!IsTimeUnit(point.unit)) continue;
    if (baseline.Find(point.key) == nullptr) {
      result.new_keys.push_back(point.key);
    }
  }
  return result;
}

std::string BenchDiffResult::ToString() const {
  std::string out;
  for (const BenchDiffEntry& e : entries) {
    const char* tag = e.regressed           ? "REGRESSED"
                      : e.improved          ? "improved"
                      : e.below_noise_floor ? "noise-floor"
                                            : "ok";
    out += StrFormat("%-11s %-40s %12.4f -> %12.4f %-7s (%.3fx)\n", tag,
                     e.key.c_str(), e.baseline, e.candidate, e.unit.c_str(),
                     e.ratio);
  }
  for (const std::string& key : missing_keys) {
    out += StrFormat("%-11s %s (in baseline only)\n", "missing", key.c_str());
  }
  for (const std::string& key : new_keys) {
    out += StrFormat("%-11s %s (in candidate only)\n", "new", key.c_str());
  }
  out += StrFormat(
      "compared %zu point(s): %d regression(s), %d improvement(s), "
      "%zu missing, %zu new\n",
      entries.size(), regressions, improvements, missing_keys.size(),
      new_keys.size());
  return out;
}

}  // namespace blitz
