file(REMOVE_RECURSE
  "CMakeFiles/topdown_test.dir/topdown_test.cc.o"
  "CMakeFiles/topdown_test.dir/topdown_test.cc.o.d"
  "topdown_test"
  "topdown_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topdown_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
