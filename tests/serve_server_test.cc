// End-to-end tests for BlitzServer (serve/server.h) over in-memory duplex
// streams: request/response flow, request isolation, admission sheds,
// per-tenant fairness, deadline degradation, and graceful drain.

#include "serve/server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "serve/client.h"
#include "serve/stream.h"
#include "serve/wire.h"
#include "testing/fuzzer.h"
#include "textio/bjq.h"

namespace blitz {
namespace {

constexpr char kSmallBjq[] =
    "relation A 100\nrelation B 200\npredicate A B 0.1\n";

/// A connected client: the server serves its end on a dedicated thread.
class TestConnection {
 public:
  explicit TestConnection(BlitzServer* server) {
    auto [client_end, server_end] = CreateDuplexPipe();
    client_end_ = std::move(client_end);
    server_end_ = std::move(server_end);
    thread_ = std::thread([server, stream = server_end_.get()] {
      (void)server->Serve(stream);
    });
  }

  ~TestConnection() { Finish(); }

  /// Half-closes the request direction and joins the serve thread.
  void Finish() {
    if (thread_.joinable()) {
      client_end_->CloseWrite();
      thread_.join();
    }
  }

  ByteStream* stream() { return client_end_.get(); }

 private:
  std::unique_ptr<ByteStream> client_end_;
  std::unique_ptr<ByteStream> server_end_;
  std::thread thread_;
};

std::string FuzzBody(std::uint64_t seed, int n) {
  fuzz::FuzzerOptions options;
  options.seed = seed;
  options.min_relations = n;
  options.max_relations = n;
  Result<fuzz::FuzzCase> fuzz_case = fuzz::GenerateCase(options, 0);
  EXPECT_TRUE(fuzz_case.ok());
  return WriteBjq(fuzz::ToQuerySpec(*fuzz_case, CostModelKind::kNaive));
}

TEST(ServerTest, AnswersASimpleRequest) {
  Result<std::unique_ptr<BlitzServer>> server =
      BlitzServer::Create(ServerOptions{});
  ASSERT_TRUE(server.ok());
  TestConnection conn(server->get());
  BlitzClient client(conn.stream(), BlitzClient::Options{});

  Result<ServeReply> reply = client.Optimize(kSmallBjq);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->plan, "(A x B)");
  EXPECT_EQ(reply->tier, "exhaustive");
  EXPECT_GT(reply->cost, 0);

  conn.Finish();
  EXPECT_EQ((*server)->requests_answered(), 1u);
}

TEST(ServerTest, MalformedBodyIsIsolatedToItsRequest) {
  Result<std::unique_ptr<BlitzServer>> server =
      BlitzServer::Create(ServerOptions{});
  ASSERT_TRUE(server.ok());
  TestConnection conn(server->get());
  BlitzClient client(conn.stream(), BlitzClient::Options{});

  // A body ParseBjq rejects, with a line-numbered message.
  Result<ServeReply> bad = client.Optimize("relation A 100\nbogus line\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos)
      << bad.status().message();

  // The same connection keeps working: the failure was request-scoped.
  Result<ServeReply> good = client.Optimize(kSmallBjq);
  EXPECT_TRUE(good.ok()) << good.status().ToString();
}

TEST(ServerTest, FrameErrorEndsTheConnectionWithAnIdZeroResponse) {
  Result<std::unique_ptr<BlitzServer>> server =
      BlitzServer::Create(ServerOptions{});
  ASSERT_TRUE(server.ok());
  TestConnection conn(server->get());

  ASSERT_TRUE(conn.stream()->Write("this is not a frame header\n").ok());
  FrameReader reader(conn.stream(), WireLimits{});
  Result<std::optional<ResponseFrame>> response = reader.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response->has_value());
  EXPECT_EQ((*response)->id, 0u);
  EXPECT_EQ((*response)->code, StatusCode::kInvalidArgument);

  // A second connection is unaffected — the process survived.
  conn.Finish();
  TestConnection conn2(server->get());
  BlitzClient client(conn2.stream(), BlitzClient::Options{});
  EXPECT_TRUE(client.Optimize(kSmallBjq).ok());
}

TEST(ServerTest, OversizedBodyIsShedByAdmission) {
  ServerOptions options;
  options.admission.default_quota.max_body_bytes = 64;
  Result<std::unique_ptr<BlitzServer>> server =
      BlitzServer::Create(options);
  ASSERT_TRUE(server.ok());
  TestConnection conn(server->get());

  BlitzClient::Options client_options;
  client_options.retry.max_attempts = 1;
  BlitzClient client(conn.stream(), std::move(client_options));
  const std::string big(1000, '#');  // 1000 bytes of comment: valid, big.
  Result<ServeReply> reply = client.Optimize(big + "\n" + kSmallBjq);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kResourceExhausted);
}

TEST(ServerTest, ExpiredDeadlineStillAnswersViaDegradation) {
  Result<std::unique_ptr<BlitzServer>> server =
      BlitzServer::Create(ServerOptions{});
  ASSERT_TRUE(server.ok());
  TestConnection conn(server->get());
  BlitzClient client(conn.stream(), BlitzClient::Options{});

  // ~0 deadline: expired by the time a worker picks it up. The degradation
  // ladder must still hand back a greedy plan rather than an error.
  Result<ServeReply> reply =
      client.Optimize(FuzzBody(/*seed=*/7, /*n=*/12), /*deadline_ms=*/0.01);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->tier, "greedy");
  EXPECT_GE(reply->degradations, 1);
}

TEST(ServerTest, TenantDeadlineCapApplies) {
  ServerOptions options;
  options.admission.default_quota.max_deadline_ms = 0.01;
  Result<std::unique_ptr<BlitzServer>> server =
      BlitzServer::Create(options);
  ASSERT_TRUE(server.ok());
  TestConnection conn(server->get());
  BlitzClient client(conn.stream(), BlitzClient::Options{});

  // The request asks for a generous deadline; the tenant cap clamps it to
  // ~nothing, so the answer comes from the degraded tiers.
  Result<ServeReply> reply =
      client.Optimize(FuzzBody(/*seed=*/9, /*n=*/12), /*deadline_ms=*/60000);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->tier, "greedy");
}

TEST(ServerTest, QueuePressureShedsWithRetryHint) {
  ServerOptions options;
  options.num_workers = 1;
  options.max_queue = 1;
  Result<std::unique_ptr<BlitzServer>> server =
      BlitzServer::Create(options);
  ASSERT_TRUE(server.ok());
  TestConnection conn(server->get());
  BlitzClient client(conn.stream(), BlitzClient::Options{});

  // Pipeline more work than one worker plus a one-slot queue can hold;
  // n=14 keeps the worker busy long enough for later sends to pile up.
  const std::string slow = FuzzBody(/*seed=*/3, /*n=*/14);
  constexpr int kRequests = 10;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(client.Send(slow).ok());
  }
  int ok = 0;
  int shed = 0;
  for (int i = 0; i < kRequests; ++i) {
    Result<std::optional<ResponseFrame>> response = client.Receive();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_TRUE(response->has_value());
    if ((*response)->code == StatusCode::kOk) {
      ++ok;
    } else {
      ASSERT_EQ((*response)->code, StatusCode::kUnavailable);
      EXPECT_GT((*response)->retry_after_ms, 0);
      ++shed;
    }
  }
  EXPECT_GE(ok, 1);
  EXPECT_GE(shed, 1);
  EXPECT_EQ(ok + shed, kRequests);
}

TEST(ServerTest, NoisyTenantCannotStarveAQuietOne) {
  ServerOptions options;
  options.num_workers = 2;
  options.admission.tenants["noisy"].max_in_flight = 1;
  Result<std::unique_ptr<BlitzServer>> server =
      BlitzServer::Create(options);
  ASSERT_TRUE(server.ok());

  TestConnection noisy_conn(server->get());
  BlitzClient::Options noisy_options;
  noisy_options.tenant = "noisy";
  BlitzClient noisy(noisy_conn.stream(), std::move(noisy_options));

  // Flood: far more than the noisy tenant's single in-flight slot.
  const std::string slow = FuzzBody(/*seed=*/5, /*n=*/14);
  constexpr int kFlood = 8;
  for (int i = 0; i < kFlood; ++i) {
    ASSERT_TRUE(noisy.Send(slow).ok());
  }

  // The quiet tenant gets served while the flood is in progress.
  TestConnection quiet_conn(server->get());
  BlitzClient::Options quiet_options;
  quiet_options.tenant = "quiet";
  BlitzClient quiet(quiet_conn.stream(), std::move(quiet_options));
  Result<ServeReply> reply = quiet.Optimize(kSmallBjq);
  EXPECT_TRUE(reply.ok()) << reply.status().ToString();

  int noisy_shed = 0;
  for (int i = 0; i < kFlood; ++i) {
    Result<std::optional<ResponseFrame>> response = noisy.Receive();
    ASSERT_TRUE(response.ok());
    ASSERT_TRUE(response->has_value());
    if ((*response)->code != StatusCode::kOk) {
      EXPECT_EQ((*response)->code, StatusCode::kResourceExhausted);
      ++noisy_shed;
    }
  }
  EXPECT_GE(noisy_shed, 1);
}

TEST(ServerTest, QuietTenantLatencyStaysBoundedUnderNoisyFlood) {
  // The acceptance bar for per-tenant admission: with a noisy tenant
  // capped at one in-flight slot, a quiet tenant's latency under the
  // flood stays within 2x its unloaded p99 (plus a small absolute
  // allowance for scheduler noise — unloaded requests are sub-millisecond,
  // while actual starvation behind the flood's queue would cost tens).
  ServerOptions options;
  options.num_workers = 2;
  options.admission.tenants["noisy"].max_in_flight = 1;
  Result<std::unique_ptr<BlitzServer>> server =
      BlitzServer::Create(options);
  ASSERT_TRUE(server.ok());

  TestConnection quiet_conn(server->get());
  BlitzClient::Options quiet_options;
  quiet_options.tenant = "quiet";
  BlitzClient quiet(quiet_conn.stream(), std::move(quiet_options));

  const auto measure = [&quiet]() -> double {
    const auto start = std::chrono::steady_clock::now();
    Result<ServeReply> reply = quiet.Optimize(kSmallBjq);
    EXPECT_TRUE(reply.ok()) << reply.status().ToString();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  constexpr int kSamples = 20;

  double unloaded_p99 = 0;  // max of 20 samples ~ p99 for this purpose
  for (int i = 0; i < kSamples; ++i) {
    unloaded_p99 = std::max(unloaded_p99, measure());
  }

  // Sustained flood: the noisy tenant keeps an 8-deep pipelined window of
  // slow queries; with its single admitted slot, at most one worker is
  // ever busy on its behalf and the rest of the window is shed.
  std::atomic<bool> stop{false};
  std::thread flood([&server, &stop] {
    TestConnection conn(server->get());
    BlitzClient::Options noisy_options;
    noisy_options.tenant = "noisy";
    BlitzClient noisy(conn.stream(), std::move(noisy_options));
    const std::string slow = FuzzBody(/*seed=*/5, /*n=*/14);
    int outstanding = 0;
    while (!stop.load()) {
      if (outstanding < 8) {
        if (!noisy.Send(slow).ok()) break;
        ++outstanding;
      } else {
        Result<std::optional<ResponseFrame>> r = noisy.Receive();
        if (!r.ok() || !r->has_value()) break;
        --outstanding;
      }
    }
  });
  while ((*server)->in_flight() == 0) {
    std::this_thread::yield();
  }

  double loaded_p99 = 0;
  for (int i = 0; i < kSamples; ++i) {
    loaded_p99 = std::max(loaded_p99, measure());
  }
  stop.store(true);
  flood.join();

  EXPECT_LE(loaded_p99, 2 * unloaded_p99 + 0.025)
      << "unloaded p99 " << unloaded_p99 * 1e3 << " ms, loaded p99 "
      << loaded_p99 * 1e3 << " ms";
}

TEST(ServerTest, ArenaReusesTablesAcrossRequests) {
  ServerOptions options;
  options.num_workers = 1;  // Serialized: every request after the first
                            // finds the previous request's table pooled.
  options.cache.max_entries = 0;  // Plan-cache hits would skip the
                                  // optimizer (and the arena) entirely.
  Result<std::unique_ptr<BlitzServer>> server =
      BlitzServer::Create(options);
  ASSERT_TRUE(server.ok());
  TestConnection conn(server->get());
  BlitzClient client(conn.stream(), BlitzClient::Options{});

  const std::string body = FuzzBody(/*seed=*/21, /*n=*/9);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(client.Optimize(body).ok());
  }
  const DpTableArena::Stats stats = (*server)->arena_stats();
  EXPECT_GE(stats.hits, 3u);
}

TEST(ServerTest, DrainShedsNewWorkAndAnswersInFlight) {
  ServerOptions options;
  options.num_workers = 1;
  options.drain_grace_ms = 5;  // Force the cancellation path.
  Result<std::unique_ptr<BlitzServer>> server =
      BlitzServer::Create(options);
  ASSERT_TRUE(server.ok());
  TestConnection conn(server->get());
  BlitzClient client(conn.stream(), BlitzClient::Options{});

  // A long optimization (n=16 exhaustive) the tiny grace cannot cover.
  ASSERT_TRUE(client.Send(FuzzBody(/*seed=*/13, /*n=*/16)).ok());

  // Wait for admission before draining, so the request races the drain as
  // in-flight work rather than being shed at the door.
  while ((*server)->in_flight() == 0) {
    std::this_thread::yield();
  }

  (*server)->BeginDrain();
  EXPECT_TRUE((*server)->draining());

  // New work is shed once draining.
  ASSERT_TRUE(client.Send(kSmallBjq).ok());

  // Shutdown blocks until both requests are answered (the long one by
  // cancellation unless it finished inside the grace window).
  (*server)->Shutdown();
  EXPECT_EQ((*server)->requests_answered(), 2u);

  std::map<std::uint64_t, ResponseFrame> responses;
  for (int i = 0; i < 2; ++i) {
    Result<std::optional<ResponseFrame>> response = client.Receive();
    ASSERT_TRUE(response.ok());
    ASSERT_TRUE(response->has_value());
    responses[(*response)->id] = std::move(**response);
  }
  ASSERT_EQ(responses.count(1), 1u);
  ASSERT_EQ(responses.count(2), 1u);
  // Request 1: answered or cleanly cancelled — never dropped.
  EXPECT_TRUE(responses[1].code == StatusCode::kOk ||
              responses[1].code == StatusCode::kCancelled)
      << StatusCodeToString(responses[1].code);
  EXPECT_EQ(responses[2].code, StatusCode::kUnavailable);

  conn.Finish();
}

TEST(ServerTest, ShutdownIsIdempotent) {
  Result<std::unique_ptr<BlitzServer>> server =
      BlitzServer::Create(ServerOptions{});
  ASSERT_TRUE(server.ok());
  (*server)->Shutdown();
  (*server)->Shutdown();
  EXPECT_TRUE((*server)->draining());
}

TEST(ServerTest, ManyConcurrentConnections) {
  ServerOptions options;
  options.num_workers = 4;
  Result<std::unique_ptr<BlitzServer>> server =
      BlitzServer::Create(options);
  ASSERT_TRUE(server.ok());

  constexpr int kClients = 8;
  constexpr int kPerClient = 6;
  std::vector<std::thread> clients;
  std::vector<int> ok_counts(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      TestConnection conn(server->get());
      BlitzClient client(conn.stream(), BlitzClient::Options{});
      for (int i = 0; i < kPerClient; ++i) {
        const std::string body =
            FuzzBody(/*seed=*/static_cast<std::uint64_t>(c * 100 + i),
                     /*n=*/4 + (i % 6));
        Result<ServeReply> reply = client.Optimize(body);
        if (reply.ok()) ++ok_counts[static_cast<std::size_t>(c)];
      }
      conn.Finish();
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(ok_counts[static_cast<std::size_t>(c)], kPerClient)
        << "client " << c;
  }
}

TEST(ServerTest, OptionValidationRejectsNonsense) {
  ServerOptions bad;
  bad.num_workers = 0;
  EXPECT_FALSE(BlitzServer::Create(bad).ok());
  bad = ServerOptions{};
  bad.max_queue = 0;
  EXPECT_FALSE(BlitzServer::Create(bad).ok());
  bad = ServerOptions{};
  bad.drain_grace_ms = -1;
  EXPECT_FALSE(BlitzServer::Create(bad).ok());
  bad = ServerOptions{};
  bad.cache.shards = 0;
  EXPECT_FALSE(BlitzServer::Create(bad).ok());
}

TEST(ServerTest, RepeatRequestsAreAnsweredFromThePlanCache) {
  Result<std::unique_ptr<BlitzServer>> server =
      BlitzServer::Create(ServerOptions{});
  ASSERT_TRUE(server.ok());
  TestConnection conn(server->get());
  BlitzClient client(conn.stream(), BlitzClient::Options{});

  Result<ServeReply> cold = client.Optimize(kSmallBjq);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_FALSE(cold->cached);

  Result<ServeReply> warm = client.Optimize(kSmallBjq);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_TRUE(warm->cached);
  // Bit-identical reuse: same plan text, same cost, same tier, same
  // §3.3 counter provenance (passes).
  EXPECT_EQ(warm->plan, cold->plan);
  EXPECT_EQ(warm->cost, cold->cost);
  EXPECT_EQ(warm->tier, cold->tier);
  EXPECT_EQ(warm->passes, cold->passes);

  const PlanCache::Stats stats = (*server)->cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ServerTest, NoCacheOptionDisablesReuse) {
  ServerOptions options;
  options.cache.max_entries = 0;
  Result<std::unique_ptr<BlitzServer>> server = BlitzServer::Create(options);
  ASSERT_TRUE(server.ok());
  TestConnection conn(server->get());
  BlitzClient client(conn.stream(), BlitzClient::Options{});
  ASSERT_TRUE(client.Optimize(kSmallBjq).ok());
  Result<ServeReply> again = client.Optimize(kSmallBjq);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->cached);
  EXPECT_EQ((*server)->cache_stats().entries, 0u);
}

TEST(ServerTest, StatzAnswersBeforeAdmissionAndWhileDraining) {
  Result<std::unique_ptr<BlitzServer>> server =
      BlitzServer::Create(ServerOptions{});
  ASSERT_TRUE(server.ok());
  TestConnection conn(server->get());
  BlitzClient client(conn.stream(), BlitzClient::Options{});
  ASSERT_TRUE(client.Optimize(kSmallBjq).ok());
  // FinishJob responds *before* releasing the tenant's admission slot;
  // wait for full quiescence (ordered after the release) so the tenant
  // accounting below is deterministic.
  while ((*server)->in_flight() != 0) std::this_thread::yield();

  Result<std::string> statz = client.Statz();
  ASSERT_TRUE(statz.ok()) << statz.status().ToString();
  EXPECT_EQ(statz->rfind(kStatzMagic, 0), 0u) << *statz;
  EXPECT_NE(statz->find("\nrequests_answered 1\n"), std::string::npos)
      << *statz;
  EXPECT_NE(statz->find("\ncache_enabled 1\n"), std::string::npos) << *statz;
  EXPECT_NE(statz->find("\ndraining 0\n"), std::string::npos) << *statz;
  // Admission erases a tenant's slot entry when its last request releases,
  // so a quiesced server reports zero tracked tenants.
  EXPECT_NE(statz->find("\ntenants_tracked 0\n"), std::string::npos) << *statz;

  // A draining server sheds optimize requests but still answers statz.
  (*server)->BeginDrain();
  Result<std::string> draining = client.Statz();
  ASSERT_TRUE(draining.ok()) << draining.status().ToString();
  EXPECT_NE(draining->find("\ndraining 1\n"), std::string::npos) << *draining;
}

}  // namespace
}  // namespace blitz
