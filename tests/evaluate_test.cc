#include "plan/evaluate.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "test_util.h"

namespace blitz {
namespace {

using ::blitz::testing::Figure3Graph;
using ::blitz::testing::MakeRandomInstance;
using ::blitz::testing::Table1Catalog;

TEST(EvaluateTest, LeafCostsNothing) {
  const Catalog catalog = Table1Catalog();
  const JoinGraph graph(4);
  const Plan leaf = Plan::Leaf(2);
  EXPECT_DOUBLE_EQ(
      EvaluateCost(leaf, catalog, graph, CostModelKind::kNaive), 0.0);
  EXPECT_DOUBLE_EQ(EvaluateCardinality(leaf.root(), catalog, graph), 30.0);
}

TEST(EvaluateTest, NaiveCostSumsOutputCardinalities) {
  const Catalog catalog = Table1Catalog();
  const JoinGraph graph(4);  // pure products
  // ((A x B) x C): cost = 200 + 6000 = 6200 (matches Table 1).
  const Plan plan = Plan::Join(
      Plan::Join(Plan::Leaf(0), Plan::Leaf(1)), Plan::Leaf(2));
  EXPECT_DOUBLE_EQ(
      EvaluateCost(plan, catalog, graph, CostModelKind::kNaive), 6200.0);
}

TEST(EvaluateTest, SelectivitiesShrinkCardinalities) {
  const Catalog catalog = Table1Catalog();
  const JoinGraph graph = Figure3Graph(0.1, 0.05, 0.02, 0.01);
  const Plan plan = Plan::Join(Plan::Leaf(0), Plan::Leaf(1));
  EXPECT_DOUBLE_EQ(EvaluateCardinality(plan.root(), catalog, graph),
                   10 * 20 * 0.1);
  EXPECT_DOUBLE_EQ(
      EvaluateCost(plan, catalog, graph, CostModelKind::kNaive), 20.0);
}

TEST(EvaluateTest, CostIsCommutativeForSymmetricModels) {
  const Catalog catalog = Table1Catalog();
  const JoinGraph graph = Figure3Graph();
  const Plan ab = Plan::Join(Plan::Leaf(0), Plan::Leaf(1));
  const Plan ba = Plan::Join(Plan::Leaf(1), Plan::Leaf(0));
  for (const CostModelKind kind :
       {CostModelKind::kNaive, CostModelKind::kSortMerge,
        CostModelKind::kDiskNestedLoops, CostModelKind::kMinSmDnl}) {
    EXPECT_DOUBLE_EQ(EvaluateCost(ab, catalog, graph, kind),
                     EvaluateCost(ba, catalog, graph, kind));
  }
}

TEST(EvaluateTest, FloatEvaluationTracksDpTableForExtractedPlans) {
  // For plans extracted from the DP table, the float evaluator reproduces
  // the table's cost column almost exactly (tiny drift is possible because
  // the evaluator multiplies selectivities in a different order).
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto instance = MakeRandomInstance(8, seed);
    for (const CostModelKind kind :
         {CostModelKind::kNaive, CostModelKind::kSortMerge,
          CostModelKind::kDiskNestedLoops}) {
      OptimizerOptions options;
      options.cost_model = kind;
      Result<OptimizeOutcome> outcome =
          OptimizeJoin(instance.catalog, instance.graph, options);
      ASSERT_TRUE(outcome.ok());
      if (!outcome->found_plan()) continue;
      Result<Plan> plan = Plan::ExtractFromTable(outcome->table);
      ASSERT_TRUE(plan.ok());
      const float evaluated =
          EvaluateCostFloat(*plan, instance.catalog, instance.graph, kind);
      EXPECT_NEAR(evaluated, outcome->cost,
                  2e-5f * std::max(1.0f, outcome->cost))
          << "seed=" << seed << " model=" << CostModelKindToString(kind);
    }
  }
}

TEST(EvaluateTest, DoubleAndFloatEvaluationsAgreeToFloatPrecision) {
  const auto instance = MakeRandomInstance(7, 42);
  Result<OptimizeOutcome> outcome =
      OptimizeJoin(instance.catalog, instance.graph, OptimizerOptions{});
  ASSERT_TRUE(outcome.ok());
  Result<Plan> plan = Plan::ExtractFromTable(outcome->table);
  ASSERT_TRUE(plan.ok());
  const double d = EvaluateCost(*plan, instance.catalog, instance.graph,
                                CostModelKind::kNaive);
  const float f = EvaluateCostFloat(*plan, instance.catalog, instance.graph,
                                    CostModelKind::kNaive);
  EXPECT_NEAR(f, d, 1e-5 * std::max(1.0, d));
}

TEST(EvaluateTest, CartesianProductPlanCost) {
  // With an edgeless graph every join is a product and cardinalities are
  // plain products of base cardinalities.
  Result<Catalog> catalog = Catalog::FromCardinalities({2, 3, 5});
  ASSERT_TRUE(catalog.ok());
  const JoinGraph graph(3);
  const Plan plan = Plan::Join(
      Plan::Join(Plan::Leaf(0), Plan::Leaf(1)), Plan::Leaf(2));
  EXPECT_DOUBLE_EQ(EvaluateCardinality(plan.root(), *catalog, graph), 30.0);
  EXPECT_DOUBLE_EQ(
      EvaluateCost(plan, *catalog, graph, CostModelKind::kNaive),
      6.0 + 30.0);
}

}  // namespace
}  // namespace blitz
