file(REMOVE_RECURSE
  "libblitz_cost.a"
)
