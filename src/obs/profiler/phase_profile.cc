#include "obs/profiler/phase_profile.h"

#include <chrono>

#include "common/strings.h"

namespace blitz {

const char* DpPhaseName(DpPhase phase) {
  switch (phase) {
    case DpPhase::kTableWrite:
      return "table_write";
    case DpPhase::kGateFilter:
      return "gate_filter";
    case DpPhase::kSurvivorReplay:
      return "survivor_replay";
    case DpPhase::kKappa2:
      return "kappa2";
    case DpPhase::kDriver:
      return "driver";
  }
  return "unknown";
}

double ProfTicksPerSecond() {
#if defined(BLITZ_PROF_HAS_RDTSC)
  // Calibrate the TSC against steady_clock over a ~10 ms window, once per
  // process. Modern x86 TSCs are constant-rate and socket-synchronized
  // (constant_tsc/nonstop_tsc), so a single short window suffices.
  static const double rate = [] {
    using Clock = std::chrono::steady_clock;
    const Clock::time_point t0 = Clock::now();
    const std::uint64_t c0 = ProfTicks();
    Clock::time_point t1;
    do {
      t1 = Clock::now();
    } while (std::chrono::duration<double>(t1 - t0).count() < 0.010);
    const std::uint64_t c1 = ProfTicks();
    const double seconds = std::chrono::duration<double>(t1 - t0).count();
    return seconds > 0 ? static_cast<double>(c1 - c0) / seconds : 1e9;
  }();
  return rate;
#else
  return 1e9;  // ProfTicks is steady_clock nanoseconds.
#endif
}

std::uint64_t PassProfile::PhaseTicks(DpPhase phase) const {
  std::uint64_t total = 0;
  for (const RankPhaseStats& rank : ranks) {
    total += rank.phase_ticks[static_cast<int>(phase)];
  }
  return total;
}

std::uint64_t PassProfile::TotalTicks() const {
  std::uint64_t total = 0;
  for (int p = 0; p < kNumDpPhases; ++p) {
    total += PhaseTicks(static_cast<DpPhase>(p));
  }
  return total;
}

double PassProfile::AttributedSeconds() const {
  return static_cast<double>(TotalTicks()) / ProfTicksPerSecond();
}

std::uint64_t PassProfile::TotalFilterLanes() const {
  std::uint64_t total = 0;
  for (const RankPhaseStats& rank : ranks) total += rank.filter_lanes;
  return total;
}

std::uint64_t PassProfile::TotalFilterSurvivors() const {
  std::uint64_t total = 0;
  for (const RankPhaseStats& rank : ranks) total += rank.filter_survivors;
  return total;
}

std::string PassProfile::ToJson() const {
  const double tps = ProfTicksPerSecond();
  const std::uint64_t total_ticks = TotalTicks();
  std::string out = StrFormat(
      "{\"passes\":%llu,\"ticks_per_second\":%.6g,"
      "\"attributed_seconds\":%.9g,\"phase_totals\":{",
      static_cast<unsigned long long>(passes), tps,
      static_cast<double>(total_ticks) / tps);
  for (int p = 0; p < kNumDpPhases; ++p) {
    const std::uint64_t ticks = PhaseTicks(static_cast<DpPhase>(p));
    out += StrFormat(
        "%s\"%s\":{\"ticks\":%llu,\"seconds\":%.9g,\"fraction\":%.6g}",
        p == 0 ? "" : ",", DpPhaseName(static_cast<DpPhase>(p)),
        static_cast<unsigned long long>(ticks),
        static_cast<double>(ticks) / tps,
        total_ticks == 0 ? 0.0
                         : static_cast<double>(ticks) /
                               static_cast<double>(total_ticks));
  }
  out += "},\"ranks\":[";
  bool first = true;
  for (int k = 0; k < kProfMaxRanks; ++k) {
    const RankPhaseStats& rank = ranks[k];
    if (rank.subsets == 0) continue;
    out += StrFormat(
        "%s{\"k\":%d,\"subsets\":%llu,\"loop_iterations\":%llu,"
        "\"kappa2_evaluations\":%llu,\"filter_lanes\":%llu,"
        "\"filter_survivors\":%llu,\"survivor_rate\":%.6g,"
        "\"wall_seconds\":%.9g,\"phases\":{",
        first ? "" : ",", k, static_cast<unsigned long long>(rank.subsets),
        static_cast<unsigned long long>(rank.loop_iterations),
        static_cast<unsigned long long>(rank.kappa2_evaluations),
        static_cast<unsigned long long>(rank.filter_lanes),
        static_cast<unsigned long long>(rank.filter_survivors),
        rank.SurvivorRate(), static_cast<double>(rank.wall_ticks) / tps);
    for (int p = 0; p < kNumDpPhases; ++p) {
      out += StrFormat(
          "%s\"%s\":%.9g", p == 0 ? "" : ",",
          DpPhaseName(static_cast<DpPhase>(p)),
          static_cast<double>(rank.phase_ticks[p]) / tps);
    }
    out += "}}";
    first = false;
  }
  out += "]}";
  return out;
}

std::string PassProfile::ToString() const {
  if (empty()) return "";
  const double tps = ProfTicksPerSecond();
  std::string out = StrFormat(
      "%llu pass(es), %.3f ms attributed\n",
      static_cast<unsigned long long>(passes), AttributedSeconds() * 1e3);
  out +=
      "  k   subsets  table_us   gate_us  replay_us  kappa2_us  driver_us "
      " surv%\n";
  for (int k = 0; k < kProfMaxRanks; ++k) {
    const RankPhaseStats& rank = ranks[k];
    if (rank.subsets == 0) continue;
    const auto us = [&](DpPhase p) {
      return static_cast<double>(rank.phase_ticks[static_cast<int>(p)]) /
             tps * 1e6;
    };
    out += StrFormat(
        "%3d %9llu %9.1f %9.1f %10.1f %10.1f %10.1f %6.1f\n", k,
        static_cast<unsigned long long>(rank.subsets),
        us(DpPhase::kTableWrite), us(DpPhase::kGateFilter),
        us(DpPhase::kSurvivorReplay), us(DpPhase::kKappa2),
        us(DpPhase::kDriver), rank.SurvivorRate() * 100.0);
  }
  return out;
}

}  // namespace blitz
