file(REMOVE_RECURSE
  "CMakeFiles/dp_table_test.dir/dp_table_test.cc.o"
  "CMakeFiles/dp_table_test.dir/dp_table_test.cc.o.d"
  "dp_table_test"
  "dp_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
