#ifndef BLITZ_COMMON_RNG_H_
#define BLITZ_COMMON_RNG_H_

#include <cstdint>

namespace blitz {

/// Deterministic 64-bit PRNG (splitmix64). Used everywhere randomness is
/// needed so that workloads, data sets, and stochastic optimizer runs are
/// reproducible from a seed. Not cryptographic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound); bound must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound) {
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform int in [lo, hi] inclusive.
  int NextInt(int lo, int hi) {
    return lo + static_cast<int>(NextBounded(
                    static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  std::uint64_t state_;
};

/// Derives a decorrelated child seed for stream `stream` of a master seed.
/// This is the one seeding scheme shared by the workload fuzzer
/// (testing/fuzzer.h), its benchmarks, and any test that wants per-case
/// substreams: child i is a pure function of (seed, i), so a run is
/// replayable from the master seed alone and streams can be consumed in any
/// order (or skipped) without shifting each other.
inline std::uint64_t DeriveSeed(std::uint64_t seed, std::uint64_t stream) {
  // One extra odd-multiplier mix keeps adjacent streams of adjacent seeds
  // from landing on correlated splitmix trajectories.
  Rng rng(seed ^ (0xd1342543de82ef95ULL * (stream + 1)));
  return rng.Next();
}

}  // namespace blitz

#endif  // BLITZ_COMMON_RNG_H_
