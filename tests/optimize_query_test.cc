#include "api/optimize_query.h"

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "plan/evaluate.h"
#include "query/workload.h"
#include "test_util.h"

namespace blitz {
namespace {

using ::blitz::testing::MakeRandomInstance;

TEST(OptimizeQueryTest, SmallQueriesAreExactAndMatchCoreOptimizer) {
  const auto instance = MakeRandomInstance(9, 3);
  QueryOptimizerOptions options;
  Result<OptimizedQuery> result =
      OptimizeQuery(instance.catalog, instance.graph, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->exact());
  EXPECT_EQ(result->passes, 1);

  Result<OptimizeOutcome> core =
      OptimizeJoin(instance.catalog, instance.graph, OptimizerOptions{});
  ASSERT_TRUE(core.ok());
  EXPECT_NEAR(result->cost, core->cost,
              1e-4 * std::max(1.0f, core->cost));
}

TEST(OptimizeQueryTest, LargeQueriesUseHybrid) {
  WorkloadSpec spec;
  spec.num_relations = 19;
  spec.topology = Topology::kChain;
  spec.mean_cardinality = 100;
  spec.variability = 0.5;
  Result<Workload> workload = MakeWorkload(spec);
  ASSERT_TRUE(workload.ok());

  QueryOptimizerOptions options;
  options.exhaustive_limit = 14;
  options.hybrid.block_size = 8;
  options.hybrid.restarts = 2;
  Result<OptimizedQuery> result =
      OptimizeQuery(workload->catalog, workload->graph, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->exact());
  EXPECT_EQ(result->plan.NumLeaves(), 19);
  const double evaluated =
      EvaluateCost(result->plan, workload->catalog, workload->graph,
                   CostModelKind::kNaive);
  EXPECT_NEAR(evaluated, result->cost, 1e-9 * std::max(1.0, evaluated));
}

TEST(OptimizeQueryTest, ThresholdLadderPathReportsPasses) {
  const auto instance = MakeRandomInstance(8, 5);
  QueryOptimizerOptions options;
  options.initial_cost_threshold = 1e-3f;
  Result<OptimizedQuery> result =
      OptimizeQuery(instance.catalog, instance.graph, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->exact());
  EXPECT_GT(result->passes, 1);
}

TEST(OptimizeQueryTest, AlgorithmsAttachedByDefault) {
  const auto instance = MakeRandomInstance(7, 7);
  QueryOptimizerOptions options;
  options.cost_model = CostModelKind::kMinAll;
  Result<OptimizedQuery> result =
      OptimizeQuery(instance.catalog, instance.graph, options);
  ASSERT_TRUE(result.ok());
  std::function<void(const PlanNode&)> check = [&](const PlanNode& node) {
    if (node.is_leaf()) return;
    EXPECT_NE(node.algorithm, JoinAlgorithm::kUnspecified);
    check(*node.left);
    check(*node.right);
  };
  check(result->plan.root());
}

TEST(OptimizeQueryTest, AlgorithmsOptional) {
  const auto instance = MakeRandomInstance(6, 9);
  QueryOptimizerOptions options;
  options.attach_algorithms = false;
  Result<OptimizedQuery> result =
      OptimizeQuery(instance.catalog, instance.graph, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan.root().algorithm, JoinAlgorithm::kUnspecified);
}

TEST(OptimizeQueryTest, RejectsBadInput) {
  const auto instance = MakeRandomInstance(5, 1);
  const JoinGraph wrong(4);
  EXPECT_FALSE(
      OptimizeQuery(instance.catalog, wrong, QueryOptimizerOptions{}).ok());
  QueryOptimizerOptions bad;
  bad.exhaustive_limit = 0;
  EXPECT_FALSE(OptimizeQuery(instance.catalog, instance.graph, bad).ok());
}

TEST(OptimizeQueryTest, ExactAndHybridAgreeOnModestSizes) {
  const auto instance = MakeRandomInstance(11, 13, 0.25);
  QueryOptimizerOptions exact_options;
  exact_options.exhaustive_limit = 16;
  QueryOptimizerOptions hybrid_options;
  hybrid_options.exhaustive_limit = 5;  // force hybrid
  hybrid_options.hybrid.block_size = 11;
  hybrid_options.hybrid.restarts = 1;
  hybrid_options.hybrid.polish = false;
  Result<OptimizedQuery> exact =
      OptimizeQuery(instance.catalog, instance.graph, exact_options);
  Result<OptimizedQuery> hybrid =
      OptimizeQuery(instance.catalog, instance.graph, hybrid_options);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(hybrid.ok());
  // Hybrid with block covering everything is a single exact solve.
  EXPECT_NEAR(hybrid->cost, exact->cost, 1e-4 * std::max(1.0, exact->cost));
}

}  // namespace
}  // namespace blitz
