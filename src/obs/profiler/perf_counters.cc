#include "obs/profiler/perf_counters.h"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#endif

namespace blitz {

const char* HwCounterName(HwCounter counter) {
  switch (counter) {
    case HwCounter::kCycles:
      return "cycles";
    case HwCounter::kInstructions:
      return "instructions";
    case HwCounter::kBranchMisses:
      return "branch_misses";
    case HwCounter::kL1dMisses:
      return "l1d_misses";
    case HwCounter::kLlcMisses:
      return "llc_misses";
  }
  return "unknown";
}

#if defined(__linux__)

namespace {

struct HwEventConfig {
  std::uint32_t type;
  std::uint64_t config;
};

// Indexed by HwCounter. Cache events use the (id | op << 8 | result << 16)
// encoding from perf_event_open(2); we count read misses.
constexpr HwEventConfig kHwEvents[kNumHwCounters] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
    {PERF_TYPE_HW_CACHE,
     PERF_COUNT_HW_CACHE_L1D | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
         (PERF_COUNT_HW_CACHE_RESULT_MISS << 16)},
    {PERF_TYPE_HW_CACHE,
     PERF_COUNT_HW_CACHE_LL | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
         (PERF_COUNT_HW_CACHE_RESULT_MISS << 16)},
};

int OpenPerfEvent(const HwEventConfig& event, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = event.type;
  attr.config = event.config;
  attr.disabled = group_fd == -1 ? 1 : 0;  // Leader starts disabled.
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  // pid=0, cpu=-1: this thread, whichever CPU it runs on.
  return static_cast<int>(
      syscall(__NR_perf_event_open, &attr, 0, -1, group_fd, 0));
}

}  // namespace

bool HwCounterGroup::Open() {
  if (valid_mask_ != 0) return true;
  int group_fd = -1;
  for (int i = 0; i < kNumHwCounters; ++i) {
    const int fd = OpenPerfEvent(kHwEvents[i], group_fd);
    if (fd < 0) continue;  // Keep whatever subset the kernel grants.
    fds_[i] = fd;
    valid_mask_ |= 1u << i;
    if (group_fd == -1) group_fd = fd;
  }
  // A group without its leader (cycles) cannot be read as a group; the
  // remaining fds became independent leaders, which breaks the single-read
  // scaling contract. Treat that as unavailable.
  if (group_fd == -1 || fds_[0] < 0) {
    Close();
    return false;
  }
  ioctl(group_fd, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(group_fd, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  return true;
}

void HwCounterGroup::Close() {
  for (int i = kNumHwCounters - 1; i >= 0; --i) {
    if (fds_[i] >= 0) close(fds_[i]);
    fds_[i] = -1;
  }
  valid_mask_ = 0;
}

HwSample HwCounterGroup::Read() const {
  HwSample sample;
  if (valid_mask_ == 0) return sample;
  // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running, value[nr].
  std::uint64_t buf[3 + kNumHwCounters] = {};
  const ssize_t got = read(fds_[0], buf, sizeof(buf));
  if (got < static_cast<ssize_t>(3 * sizeof(std::uint64_t))) return sample;
  const std::uint64_t nr = buf[0];
  const std::uint64_t enabled = buf[1];
  const std::uint64_t running = buf[2];
  // Multiplex scaling: estimate = value * enabled / running.
  const double scale =
      running > 0 ? static_cast<double>(enabled) / static_cast<double>(running)
                  : 0.0;
  std::uint64_t slot = 0;
  for (int i = 0; i < kNumHwCounters; ++i) {
    if (!(valid_mask_ & (1u << i))) continue;
    if (slot >= nr) break;
    sample.values[i] = static_cast<std::uint64_t>(
        static_cast<double>(buf[3 + slot]) * scale);
    ++slot;
  }
  return sample;
}

#else  // !defined(__linux__)

bool HwCounterGroup::Open() { return false; }
void HwCounterGroup::Close() { valid_mask_ = 0; }
HwSample HwCounterGroup::Read() const { return HwSample{}; }

#endif

}  // namespace blitz
