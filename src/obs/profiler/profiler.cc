#include "obs/profiler/profiler.h"

#include <atomic>

#include "common/strings.h"

namespace blitz {

namespace {

std::atomic<Profiler*> g_profiler{nullptr};

// One-shot probe result for perf_event availability, so a timer-only
// environment (container seccomp, paranoid sysctl, VM without PMU) pays
// the failing syscalls once per process instead of once per scope.
// 0 = unprobed, 1 = available, 2 = unavailable.
std::atomic<int> g_perf_state{0};

bool TryOpenCounters(HwCounterGroup* hw) {
  int state = g_perf_state.load(std::memory_order_relaxed);
  if (state == 2) return false;
  if (hw->Open()) {
    if (state == 0) g_perf_state.store(1, std::memory_order_relaxed);
    return true;
  }
  if (state == 0) g_perf_state.store(2, std::memory_order_relaxed);
  return false;
}

}  // namespace

Profiler* GlobalProfiler() {
  return g_profiler.load(std::memory_order_acquire);
}

void SetGlobalProfiler(Profiler* profiler) {
  g_profiler.store(profiler, std::memory_order_release);
}

void Profiler::RecordScope(std::string_view name, double seconds,
                           const HwSample& hw, unsigned valid_mask) {
  std::lock_guard<std::mutex> lock(mu_);
  ProfScopeStats& stats = scopes_[std::string(name)];
  ++stats.calls;
  stats.wall_seconds += seconds;
  stats.hw += hw;
  hw_valid_mask_ |= valid_mask;
}

void Profiler::FoldPass(const PassProfile& profile) {
  std::lock_guard<std::mutex> lock(mu_);
  pass_ += profile;
}

PassProfile Profiler::pass_profile() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pass_;
}

const char* Profiler::backend() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hw_valid_mask_ != 0 ? "perf_event" : "timer";
}

std::string Profiler::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out =
      StrFormat("{\"backend\":\"%s\",\"counters\":[",
                hw_valid_mask_ != 0 ? "perf_event" : "timer");
  bool first = true;
  for (int i = 0; i < kNumHwCounters; ++i) {
    if (!(hw_valid_mask_ & (1u << i))) continue;
    out += StrFormat("%s\"%s\"", first ? "" : ",",
                     HwCounterName(static_cast<HwCounter>(i)));
    first = false;
  }
  out += "],\"scopes\":{";
  first = true;
  for (const auto& [name, stats] : scopes_) {
    out += StrFormat("%s\"%s\":{\"calls\":%llu,\"seconds\":%.9g",
                     first ? "" : ",", name.c_str(),
                     static_cast<unsigned long long>(stats.calls),
                     stats.wall_seconds);
    for (int i = 0; i < kNumHwCounters; ++i) {
      if (!(hw_valid_mask_ & (1u << i))) continue;
      out += StrFormat(",\"%s\":%llu",
                       HwCounterName(static_cast<HwCounter>(i)),
                       static_cast<unsigned long long>(
                           stats.hw.values[i]));
    }
    out += "}";
    first = false;
  }
  out += "},\"dp\":";
  out += pass_.ToJson();
  out += "}";
  return out;
}

std::string Profiler::ToString() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = StrFormat(
      "profiler backend: %s\n", hw_valid_mask_ != 0 ? "perf_event" : "timer");
  for (const auto& [name, stats] : scopes_) {
    out += StrFormat("  %-32s calls=%llu wall=%.3f ms", name.c_str(),
                     static_cast<unsigned long long>(stats.calls),
                     stats.wall_seconds * 1e3);
    if (hw_valid_mask_ & 1u) {
      out += StrFormat(" cycles=%llu", static_cast<unsigned long long>(
                                           stats.hw[HwCounter::kCycles]));
    }
    if (hw_valid_mask_ & 2u) {
      const std::uint64_t cycles = stats.hw[HwCounter::kCycles];
      const std::uint64_t instr = stats.hw[HwCounter::kInstructions];
      out += StrFormat(" ipc=%.2f",
                       cycles == 0 ? 0.0
                                   : static_cast<double>(instr) /
                                         static_cast<double>(cycles));
    }
    out += "\n";
  }
  if (!pass_.empty()) out += pass_.ToString();
  return out;
}

void Profiler::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  scopes_.clear();
  pass_ = PassProfile{};
  hw_valid_mask_ = 0;
}

ProfileScope::ProfileScope(Profiler* profiler, const char* name,
                           const char* category)
    : profiler_(profiler),
      name_(name),
      span_(profiler ? GlobalTraceRecorder() : nullptr, name, category) {
  if (profiler_ != nullptr) TryOpenCounters(&hw_);
}

ProfileScope::~ProfileScope() {
  if (profiler_ == nullptr) return;
  const double seconds = timer_.ElapsedSeconds();
  profiler_->RecordScope(name_, seconds, hw_.Read(), hw_.valid_mask());
}

}  // namespace blitz
