
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/equivalence.cc" "src/query/CMakeFiles/blitz_query.dir/equivalence.cc.o" "gcc" "src/query/CMakeFiles/blitz_query.dir/equivalence.cc.o.d"
  "/root/repo/src/query/join_graph.cc" "src/query/CMakeFiles/blitz_query.dir/join_graph.cc.o" "gcc" "src/query/CMakeFiles/blitz_query.dir/join_graph.cc.o.d"
  "/root/repo/src/query/plan_space.cc" "src/query/CMakeFiles/blitz_query.dir/plan_space.cc.o" "gcc" "src/query/CMakeFiles/blitz_query.dir/plan_space.cc.o.d"
  "/root/repo/src/query/topology.cc" "src/query/CMakeFiles/blitz_query.dir/topology.cc.o" "gcc" "src/query/CMakeFiles/blitz_query.dir/topology.cc.o.d"
  "/root/repo/src/query/workload.cc" "src/query/CMakeFiles/blitz_query.dir/workload.cc.o" "gcc" "src/query/CMakeFiles/blitz_query.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/blitz_common.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/blitz_catalog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
